//! Output-identity suite for the sharded multi-channel kernel and the
//! event-driven skip-ahead: every acceleration mode must produce
//! results byte-identical (via [`RunStats::encode`]) to plain serial
//! stepping, across schedulers, predictors, sampling, trace capture,
//! and checkpoint restore.

use critmem::{AgentMix, PredictorKind, RunStats, Session, System, SystemConfig};
use critmem_common::codec::ByteWriter;
use critmem_predict::CbpMetric;
use critmem_sched::{MorseConfig, SchedulerKind, TcmTiebreak};

/// A small two-core platform on the paper's quad-channel DRAM (the
/// channel count is what the sharded tick partitions).
fn base_cfg(instr: u64) -> SystemConfig {
    let mut c = SystemConfig::paper_baseline(instr);
    c.cores = 2;
    c.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    c.max_cycles = 50_000_000;
    c
}

fn with_kernel(cfg: &SystemConfig, shards: usize, skip_ahead: bool) -> SystemConfig {
    let mut c = cfg.clone();
    c.shards = shards;
    c.skip_ahead = skip_ahead;
    c
}

fn run(cfg: SystemConfig, wl: &AgentMix) -> RunStats {
    Session::new(cfg, wl)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn bytes(stats: &RunStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    stats.encode(&mut w);
    w.into_bytes()
}

/// Serial reference vs the fully accelerated kernel, one pass per
/// scheduler the repo implements (Wedged excluded: it livelocks by
/// design).
#[test]
fn every_scheduler_is_identical_under_the_accelerated_kernel() {
    let schedulers = [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::CritCasRas,
        SchedulerKind::CasRasCrit,
        SchedulerKind::Ahb,
        SchedulerKind::Atlas,
        SchedulerKind::Minimalist,
        SchedulerKind::ParBs { marking_cap: 5 },
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::FrFcfs,
        },
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::CritFrFcfs,
        },
        SchedulerKind::Morse(MorseConfig::default()),
    ];
    let wl = AgentMix::Parallel("swim");
    for sched in schedulers {
        let cfg = base_cfg(600)
            .with_scheduler(sched)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let reference = bytes(&run(with_kernel(&cfg, 1, false), &wl));
        let accel = bytes(&run(with_kernel(&cfg, 2, true), &wl));
        assert_eq!(accel, reference, "{} diverged", sched.name());
    }
}

/// Every CBP annotation metric (including one with periodic resets,
/// which adds a predictor event the skip-ahead horizon must respect).
#[test]
fn every_cbp_metric_is_identical_under_the_accelerated_kernel() {
    let metrics = [
        CbpMetric::Binary,
        CbpMetric::BlockCount,
        CbpMetric::LastStallTime,
        CbpMetric::MaxStallTime,
        CbpMetric::TotalStallTime,
    ];
    let wl = AgentMix::Parallel("art");
    for metric in metrics {
        let cfg = base_cfg(600)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::Cbp {
                metric,
                size: critmem_predict::TableSize::Entries(64),
                reset_interval: Some(10_000),
            });
        let reference = bytes(&run(with_kernel(&cfg, 1, false), &wl));
        let accel = bytes(&run(with_kernel(&cfg, 2, true), &wl));
        assert_eq!(accel, reference, "{} diverged", metric.name());
    }
}

/// The full mode matrix on the flagship configuration (criticality
/// scheduling + naive forwarding + time-series sampling), including an
/// oversized shard count that must clamp to the channel count.
#[test]
fn all_modes_identical_with_forwarding_and_sampling() {
    let mut cfg = base_cfg(1_500)
        .with_scheduler(SchedulerKind::CasRasCrit)
        .with_sampling(7_500);
    cfg.naive_forwarding = true;
    let wl = AgentMix::Parallel("art");
    let reference = bytes(&run(with_kernel(&cfg, 1, false), &wl));
    for (name, shards, skip) in [
        ("skip-ahead", 1, true),
        ("shards=2", 2, false),
        ("shards=2+skip", 2, true),
        ("shards=64 (clamped)", 64, true),
    ] {
        let got = bytes(&run(with_kernel(&cfg, shards, skip), &wl));
        assert_eq!(got, reference, "{name} diverged");
    }
}

/// Trace capture must record the exact same request stream whichever
/// kernel produced it.
#[test]
fn trace_capture_is_identical_under_the_accelerated_kernel() {
    let cfg = base_cfg(800).with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
    let wl = AgentMix::Parallel("swim");
    let capture = |cfg: SystemConfig| {
        Session::new(cfg, &wl)
            .traced("swim")
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .observer
            .into_trace()
    };
    let reference = capture(with_kernel(&cfg, 1, false));
    assert!(!reference.records.is_empty(), "swim must miss the L2");
    assert_eq!(capture(with_kernel(&cfg, 2, true)), reference);
}

/// A checkpoint written by the serial kernel must restore under the
/// accelerated kernel (the shard pool and skip flag are engine knobs,
/// not platform state) and still finish byte-identical to an unbroken
/// serial run.
#[test]
fn checkpoint_restore_mid_run_is_identical() {
    let cfg = base_cfg(1_200).with_scheduler(SchedulerKind::CasRasCrit);
    let wl = AgentMix::Parallel("swim");
    let reference = bytes(&run(with_kernel(&cfg, 1, false), &wl));
    let ckpt = Session::new(with_kernel(&cfg, 1, false), &wl)
        .checkpoint_at(5_000)
        .run_to_checkpoint()
        .unwrap_or_else(|e| panic!("{e}"));
    let resumed = Session::from_checkpoint(&ckpt, with_kernel(&cfg, 2, true), &wl)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats;
    assert_eq!(bytes(&resumed), reference);
}

/// Property check through the public API: whenever the idle horizon
/// claims a quiet window, stepping through that window serially must
/// not deliver a forwarding message, accept a request into DRAM, take
/// a sample, or commit an instruction before the horizon cycle.
#[test]
fn idle_horizon_is_sound_through_the_public_api() {
    let mut cfg = base_cfg(500).with_scheduler(SchedulerKind::CasRasCrit);
    cfg.naive_forwarding = true;
    cfg.sample_epoch = Some(5_000);
    cfg.skip_ahead = false; // this test performs the window walk itself
    let mut sys = System::new(cfg, &AgentMix::Parallel("art"));
    fn fingerprint(s: &System) -> (Vec<u64>, (usize, usize), usize, usize) {
        (
            s.committed(),
            s.queue_depths(),
            s.pending_forwards(),
            s.samples_taken(),
        )
    }
    let mut windows = 0u32;
    while !sys.done() && sys.now() < 5_000_000 {
        let h = sys.idle_horizon();
        if h > sys.now() + 1 {
            windows += 1;
            let before = fingerprint(&sys);
            while sys.now() < h - 1 {
                sys.step();
                assert_eq!(
                    fingerprint(&sys),
                    before,
                    "an event fired inside a claimed quiet window at cycle {}",
                    sys.now()
                );
            }
        }
        sys.step();
    }
    assert!(sys.done(), "run must finish under the cycle bound");
    assert!(windows > 0, "workload never produced a quiet window");
}
