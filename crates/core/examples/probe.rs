//! Internal progress probe (not part of the public example set).
use critmem::{AgentMix, System, SystemConfig};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "swim".into());
    let app: &'static str = Box::leak(app.into_boxed_str());
    let mut cfg = SystemConfig::paper_baseline(20_000);
    cfg.max_cycles = u64::MAX;
    let mut sys = System::new(cfg, &AgentMix::Parallel(app));
    while !sys.done() && sys.now() < 20_000_000 {
        sys.step();
        if sys.now().is_multiple_of(500_000) {
            let (q, ob) = sys.queue_depths();
            eprintln!(
                "cycle {:>9}: committed {:?} dramq={q} outbox={ob}",
                sys.now(),
                sys.committed()
            );
        }
    }
    eprintln!("done={} at cycle {}", sys.done(), sys.now());
}
