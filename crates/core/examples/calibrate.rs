//! Internal calibration probe: per-app baseline characteristics and
//! the headline criticality speedup at small scale.
use critmem::{AgentMix, PredictorKind, Session, SystemConfig};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use std::time::Instant;

fn main() {
    let instr: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("instr/core = {instr}");
    println!(
        "{:<10} {:>10} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6} {:>6}",
        "app",
        "cycles",
        "IPC",
        "blkLd%",
        "blkCy%",
        "L2hit%",
        "rowhit%",
        "maxstall",
        "crit1%",
        "starv",
        "wall"
    );
    for app in critmem_workloads::PARALLEL_APPS {
        let t0 = Instant::now();
        let mut cfg = SystemConfig::paper_baseline(instr);
        cfg.max_cycles = 500_000_000;
        let wl = AgentMix::Parallel(app);
        let base = Session::new(cfg.clone(), &wl)
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .stats;
        let crit = Session::new(cfg.clone(), &wl)
            .scheduler(SchedulerKind::CasRasCrit)
            .predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .stats;
        let speedup = base.cycles as f64 / crit.cycles as f64;
        let ipc = instr as f64 * 8.0 / base.cycles as f64;
        let rh: f64 = {
            let hits: u64 = base.channels.iter().map(|c| c.row_hits).sum();
            let tot: u64 = base
                .channels
                .iter()
                .map(|c| c.row_hits + c.row_misses + c.row_conflicts)
                .sum();
            if tot == 0 {
                0.0
            } else {
                hits as f64 / tot as f64
            }
        };
        let (one, _many) = crit.critical_queue_fractions();
        let starv: u64 = base.channels.iter().map(|c| c.starvation_promotions).sum();
        println!("{:<10} {:>10} {:>6.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}% {:>+7.1}% {:>6.1}% {:>6} {:>5.1}s",
            app, base.cycles, ipc,
            base.blocked_load_fraction()*100.0, base.blocked_cycle_fraction()*100.0,
            base.hierarchy.l2_hit_rate()*100.0, rh*100.0,
            (speedup-1.0)*100.0, one*100.0, starv,
            t0.elapsed().as_secs_f64());
    }
}
