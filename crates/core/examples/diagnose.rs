use critmem::{AgentMix, PredictorKind, Session, SystemConfig};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "mg".into());
    let app: &'static str = Box::leak(app.into_boxed_str());
    let n: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25_000);
    for (name, cfg) in [
        ("FR-FCFS", SystemConfig::paper_baseline(n)),
        (
            "CASRAS-Crit/Binary",
            SystemConfig::paper_baseline(n)
                .with_scheduler(SchedulerKind::CasRasCrit)
                .with_predictor(PredictorKind::cbp64(CbpMetric::Binary)),
        ),
    ] {
        let mut cfg = cfg;
        cfg.max_cycles = 2_000_000_000;
        let s = Session::new(cfg, &AgentMix::Parallel(app))
            .run()
            .unwrap_or_else(|e| panic!("{e}"))
            .stats;
        let starv: u64 = s.channels.iter().map(|c| c.starvation_promotions).sum();
        let rh: u64 = s.channels.iter().map(|c| c.row_hits).sum();
        let rm: u64 = s.channels.iter().map(|c| c.row_misses).sum();
        let rc: u64 = s.channels.iter().map(|c| c.row_conflicts).sum();
        let occ: f64 =
            s.channels.iter().map(|c| c.mean_occupancy()).sum::<f64>() / s.channels.len() as f64;
        let lat: f64 = {
            let sum: u64 = s.channels.iter().map(|c| c.read_latency_sum).sum();
            let n: u64 = s.channels.iter().map(|c| c.reads_completed).sum();
            sum as f64 / n as f64
        };
        let finish_min = s.core_finish.iter().min().unwrap();
        let finish_max = s.core_finish.iter().max().unwrap();
        println!("{name:<20} cycles {:>9} starv {:>6} rowhit {:.1}% (h{rh}/m{rm}/c{rc}) occ {occ:.1} dramlat {lat:.0} spread {:.2}",
            s.cycles, starv,
            100.0 * rh as f64 / (rh+rm+rc) as f64,
            *finish_max as f64 / *finish_min as f64);
        let sb: u64 = s.cores.iter().map(|c| c.sb_full_cycles).sum();
        let cyc: u64 = s.cores.iter().map(|c| c.cycles).sum();
        println!(
            "{:<20} sb_full {:.1}% of core-cycles",
            "",
            100.0 * sb as f64 / cyc as f64
        );
        let (one, many) = s.critical_queue_fractions();
        println!(
            "{:<20} critq1 {:.1}% critq>1 {:.1}% issued_crit {:.1}%",
            "",
            one * 100.0,
            many * 100.0,
            100.0 * s.cores.iter().map(|c| c.issued_critical_loads).sum::<u64>() as f64
                / s.cores.iter().map(|c| c.issued_loads).sum::<u64>() as f64
        );
    }
}
