use critmem::experiments::{fig4, Runner, Scale};
fn main() {
    let mut r = Runner::new(Scale {
        instructions: 6_000,
        apps: vec!["art", "mg", "swim"],
        sweep_apps: vec!["mg"],
        bundles: vec![],
    });
    let f = fig4(&mut r);
    for s in &f.series {
        println!(
            "{:<16} avg {:+.2}%  per-app {:?}",
            s.label,
            (s.average() - 1.0) * 100.0,
            s.per_app
                .iter()
                .map(|v| format!("{:+.1}%", (v - 1.0) * 100.0))
                .collect::<Vec<_>>()
        );
    }
}
