//! The capture side: a [`RequestObserver`] that records every request
//! accepted into a DRAM transaction queue.

use crate::format::{Fingerprint, Trace, TraceRecord};
use critmem_common::{CpuCycle, MemRequest, RequestObserver};

/// Buffers every observed LLC-miss request as a [`TraceRecord`].
///
/// Attach it to a system via the observer seam; afterwards,
/// [`TraceSink::into_trace`] yields the finished [`Trace`]. Capture is
/// opt-in: systems instantiated with the `()` observer compile the hook
/// away entirely.
///
/// # Examples
///
/// ```
/// use critmem_trace::{Fingerprint, TraceSink};
/// use critmem_common::{AccessKind, CoreId, MemRequest, RequestObserver};
/// use critmem_dram::DramConfig;
///
/// let fp = Fingerprint::of(8, 4_270, &DramConfig::paper_baseline());
/// let mut sink = TraceSink::new(fp, "swim");
/// sink.on_enqueue(10, &MemRequest::new(0, 0x40, AccessKind::Read, CoreId(0)));
/// let trace = sink.into_trace();
/// assert_eq!(trace.records.len(), 1);
/// assert_eq!(trace.source, "swim");
/// ```
#[derive(Debug, Clone)]
pub struct TraceSink {
    fingerprint: Fingerprint,
    source: String,
    records: Vec<TraceRecord>,
}

impl TraceSink {
    /// Creates an empty sink for a system with the given fingerprint.
    pub fn new(fingerprint: Fingerprint, source: &str) -> Self {
        TraceSink {
            fingerprint,
            source: source.to_string(),
            records: Vec::new(),
        }
    }

    /// Records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finalizes the capture.
    pub fn into_trace(self) -> Trace {
        Trace {
            fingerprint: self.fingerprint,
            source: self.source,
            records: self.records,
        }
    }
}

impl RequestObserver for TraceSink {
    #[inline]
    fn on_enqueue(&mut self, now: CpuCycle, req: &MemRequest) {
        self.records.push(TraceRecord::capture(now, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::{AccessKind, CoreId, Criticality};
    use critmem_dram::DramConfig;

    #[test]
    fn sink_preserves_order_and_annotations() {
        let fp = Fingerprint::of(2, 4_270, &DramConfig::paper_baseline());
        let mut sink = TraceSink::new(fp, "art");
        assert!(sink.is_empty());
        for i in 0..5u64 {
            let req = MemRequest::new(i, i * 64, AccessKind::Read, CoreId(0))
                .with_criticality(Criticality::ranked(i * 10));
            sink.on_enqueue(i * 3, &req);
        }
        assert_eq!(sink.len(), 5);
        let trace = sink.into_trace();
        for (i, rec) in trace.records.iter().enumerate() {
            let i = i as u64;
            assert_eq!(rec.enqueue_cycle, i * 3);
            assert_eq!(rec.crit, i * 10);
        }
    }
}
