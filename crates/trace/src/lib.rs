//! `critmem-trace`: memory-request trace capture & replay for
//! scheduler-only studies.
//!
//! Execution-driven simulation pays for cores, caches, and predictors
//! on every run — even when the experiment only varies the memory
//! scheduler. This crate decouples the two phases:
//!
//! 1. **Capture** — a [`TraceSink`] attached to the system's request
//!    observer seam records every LLC miss accepted into a DRAM
//!    transaction queue: enqueue cycle, MSHR-issue cycle, address,
//!    kind, core, and the criticality annotation the processor-side
//!    predictor attached (the paper's §3.2 piggybacked bits).
//! 2. **Replay** — a [`TraceReplayer`] drives a `DramSystem` directly
//!    from the trace, injecting requests at their recorded CPU cycles
//!    through the same clock divider. One capture then serves an entire
//!    sweep of scheduler/arrangement configurations at a fraction of
//!    the execution-driven cost.
//!
//! The binary format ([`Trace`], [`TraceWriter`], [`TraceReader`]) is
//! compact (42 B/record), versioned, and self-describing: the header
//! carries a [`Fingerprint`] of the capturing topology, and replay
//! against a mismatched system is rejected with a field-by-field
//! diagnosis.
//!
//! For horizons past what fits in RAM, the replayer is generic over a
//! [`RequestSource`]: [`TraceStream`] iterates a CMTR file
//! chunk-at-a-time at constant memory (one [`CHUNK_BYTES`] buffer),
//! and [`SynthSource`] generates unbounded traffic from a
//! [`TrafficProfile`] fitted to a capture — see the [`stream`] and
//! [`synth`] modules.
//!
//! # Examples
//!
//! ```
//! use critmem_trace::{Fingerprint, ReplayConfig, Trace, TraceRecord, TraceReplayer};
//! use critmem_common::{AccessKind, CoreId, MemRequest, RequestObserver};
//! use critmem_dram::{DramConfig, DramSystem, Fcfs};
//!
//! // A (tiny, hand-built) trace...
//! let cfg = DramConfig::paper_baseline();
//! let fingerprint = Fingerprint::of(8, 4_270, &cfg);
//! let records = (0..4u64)
//!     .map(|i| TraceRecord {
//!         enqueue_cycle: 5 + i * 8,
//!         issued_at: i * 8,
//!         id: i,
//!         addr: i * 1024,
//!         crit: 0,
//!         core: i as u8,
//!         kind: AccessKind::Read,
//!     })
//!     .collect();
//! let trace = Trace { fingerprint, source: "doc".into(), records };
//!
//! // ...round-trips through bytes and replays against any scheduler.
//! let bytes = trace.to_bytes().unwrap();
//! let trace = Trace::read_from(std::io::Cursor::new(bytes)).unwrap();
//! let dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
//! let stats = TraceReplayer::new(trace, dram, ReplayConfig::default())
//!     .unwrap()
//!     .run();
//! assert_eq!(stats.completed, 4);
//! ```

pub mod format;
pub mod replay;
pub mod sink;
pub mod stream;
pub mod synth;

pub use format::{Fingerprint, Trace, TraceError, TraceReader, TraceRecord, TraceWriter};
pub use replay::{ReplayConfig, ReplayStats, TraceReplayer};
pub use sink::TraceSink;
pub use stream::{RequestSource, TraceSource, TraceStream, CHUNK_BYTES};
pub use synth::{CoreProfile, SynthSource, TrafficProfile};
