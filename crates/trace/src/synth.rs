//! Statistical traffic profiles and the seeded synthesizer that turns
//! them into unbounded request streams.
//!
//! A captured CMTR trace is finite — it ends when the capture run
//! ends. Long-horizon studies (fairness, starvation, slow drift) need
//! traffic far past that point. [`TrafficProfile::fit`] distills a
//! capture into a small statistical model — global arrival rate,
//! per-core traffic share, read/write/prefetch mix, criticality mix,
//! row-buffer locality, and row footprint — and [`SynthSource`]
//! regenerates traffic matching that model from a deterministic
//! seeded generator ([`critmem_common::SmallRng`]), for as many
//! requests as the study asks for. The same seed and profile always
//! produce the identical stream, so synthesized experiments are as
//! reproducible as replayed ones.
//!
//! Profiles serialize as `CMPF` artifacts (CritMem ProFile): a CRC-32
//! framed container over a [`critmem_common::codec`] payload, in the
//! same shape as the checkpoint (`CMCK`) artifact:
//!
//! ```text
//! magic        4  b"CMPF"
//! version      4  u32, currently 1
//! payload_len  4  u32
//! payload      n  ByteWriter encoding (fingerprint blob, source,
//!                 records_fitted, mean_gap, mean_issue_lag, cores)
//! crc32        4  over the payload bytes
//! ```
//!
//! # Examples
//!
//! ```
//! use critmem_trace::{RequestSource, SynthSource, TrafficProfile};
//! # use critmem_trace::{Fingerprint, Trace, TraceRecord};
//! # use critmem_common::AccessKind;
//! # use critmem_dram::DramConfig;
//! # let cfg = DramConfig::paper_baseline();
//! # let records = (0..64u64).map(|i| TraceRecord {
//! #     enqueue_cycle: i * 4, issued_at: i * 4, id: i, addr: i * 64,
//! #     crit: i % 3, core: (i % 8) as u8, kind: AccessKind::Read,
//! # }).collect();
//! # let trace = Trace {
//! #     fingerprint: Fingerprint::of(8, 4_270, &cfg),
//! #     source: "doc".into(),
//! #     records,
//! # };
//! let profile = TrafficProfile::fit(&trace).unwrap();
//! let bytes = profile.to_bytes(); // CMPF artifact
//! assert_eq!(TrafficProfile::from_bytes(&bytes).unwrap(), profile);
//!
//! let mut synth = SynthSource::new(&profile, 42).with_limit(1_000);
//! let mut n = 0;
//! while let Some(rec) = synth.next_record().unwrap() {
//!     n += 1;
//!     let _ = rec.enqueue_cycle;
//! }
//! assert_eq!(n, 1_000);
//! ```

use crate::format::{Fingerprint, Trace, TraceError, TraceRecord};
use crate::stream::RequestSource;
use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::crc32::Crc32;
use critmem_common::{AccessKind, SmallRng};
use std::path::Path;

/// CMPF artifact magic: "CritMem ProFile".
pub const PROFILE_MAGIC: [u8; 4] = *b"CMPF";
/// Current CMPF artifact version.
pub const PROFILE_VERSION: u32 = 1;

/// Per-core statistical summary of captured traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreProfile {
    /// This core's share of total requests (0 for a silent core).
    pub weight: f64,
    /// Fraction of this core's requests that are writes.
    pub write_frac: f64,
    /// Fraction of this core's requests that are prefetches.
    pub prefetch_frac: f64,
    /// Fraction of this core's *reads* carrying a criticality
    /// annotation (`crit > 0`).
    pub crit_frac: f64,
    /// Mean criticality magnitude over annotated reads.
    pub mean_crit: f64,
    /// Probability that a request lands in the same DRAM row as this
    /// core's previous request (row-buffer locality).
    pub row_hit_frac: f64,
    /// Distinct DRAM rows this core touched (its working-set span).
    pub footprint_rows: u64,
}

impl CoreProfile {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.weight);
        w.put_f64(self.write_frac);
        w.put_f64(self.prefetch_frac);
        w.put_f64(self.crit_frac);
        w.put_f64(self.mean_crit);
        w.put_f64(self.row_hit_frac);
        w.put_u64(self.footprint_rows);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CoreProfile {
            weight: r.get_f64()?,
            write_frac: r.get_f64()?,
            prefetch_frac: r.get_f64()?,
            crit_frac: r.get_f64()?,
            mean_crit: r.get_f64()?,
            row_hit_frac: r.get_f64()?,
            footprint_rows: r.get_u64()?,
        })
    }
}

/// A fitted statistical model of a capture's memory traffic.
///
/// Carries the capture's topology [`Fingerprint`] so synthesized
/// traffic replays only against matching DRAM systems — the same
/// safety rail trace replay has.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficProfile {
    /// Topology of the capturing system.
    pub fingerprint: Fingerprint,
    /// Provenance label, e.g. `"swim"` or `"synthetic-dense"`.
    pub source: String,
    /// Number of trace records the fit consumed.
    pub records_fitted: u64,
    /// Mean CPU cycles between consecutive request arrivals (the
    /// exponential inter-arrival mean; smaller = denser traffic).
    pub mean_gap: f64,
    /// Mean CPU cycles between MSHR issue and transaction-queue
    /// enqueue (processor-side queuing delay).
    pub mean_issue_lag: f64,
    /// One entry per core of the capturing system.
    pub cores: Vec<CoreProfile>,
}

impl TrafficProfile {
    /// Fits a profile to a captured trace.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] if the trace carries no records —
    /// there is nothing to fit.
    pub fn fit(trace: &Trace) -> Result<Self, TraceError> {
        if trace.records.is_empty() {
            return Err(TraceError::Corrupt(
                "cannot fit a traffic profile to an empty trace".into(),
            ));
        }
        let recs = &trace.records;
        let total = recs.len() as f64;
        let row_bytes = trace.fingerprint.row_bytes.max(1);

        let first = recs.iter().map(|r| r.enqueue_cycle).min().unwrap();
        let last = recs.iter().map(|r| r.enqueue_cycle).max().unwrap();
        let mean_gap = if recs.len() > 1 {
            (last - first) as f64 / (recs.len() - 1) as f64
        } else {
            1.0
        };
        let mean_issue_lag = recs
            .iter()
            .map(|r| (r.enqueue_cycle - r.issued_at.min(r.enqueue_cycle)) as f64)
            .sum::<f64>()
            / total;

        let max_core = recs.iter().map(|r| r.core as usize).max().unwrap();
        let ncores = (trace.fingerprint.cores as usize).max(max_core + 1);
        struct Acc {
            count: u64,
            writes: u64,
            prefetches: u64,
            reads: u64,
            crit_reads: u64,
            crit_sum: u64,
            row_hits: u64,
            row_moves: u64,
            prev_row: Option<u64>,
            rows: std::collections::BTreeSet<u64>,
        }
        let mut accs: Vec<Acc> = (0..ncores)
            .map(|_| Acc {
                count: 0,
                writes: 0,
                prefetches: 0,
                reads: 0,
                crit_reads: 0,
                crit_sum: 0,
                row_hits: 0,
                row_moves: 0,
                prev_row: None,
                rows: std::collections::BTreeSet::new(),
            })
            .collect();
        for r in recs {
            let a = &mut accs[r.core as usize];
            a.count += 1;
            match r.kind {
                AccessKind::Write => a.writes += 1,
                AccessKind::Prefetch => a.prefetches += 1,
                AccessKind::Read => {
                    a.reads += 1;
                    if r.crit > 0 {
                        a.crit_reads += 1;
                        a.crit_sum += r.crit;
                    }
                }
            }
            let row = r.addr / row_bytes;
            if let Some(prev) = a.prev_row {
                a.row_moves += 1;
                a.row_hits += u64::from(prev == row);
            }
            a.prev_row = Some(row);
            a.rows.insert(row);
        }
        let cores = accs
            .into_iter()
            .map(|a| {
                let n = a.count.max(1) as f64;
                CoreProfile {
                    weight: a.count as f64 / total,
                    write_frac: a.writes as f64 / n,
                    prefetch_frac: a.prefetches as f64 / n,
                    crit_frac: a.crit_reads as f64 / a.reads.max(1) as f64,
                    mean_crit: a.crit_sum as f64 / a.crit_reads.max(1) as f64,
                    row_hit_frac: if a.row_moves > 0 {
                        a.row_hits as f64 / a.row_moves as f64
                    } else {
                        0.5
                    },
                    footprint_rows: (a.rows.len() as u64).max(1),
                }
            })
            .collect();
        Ok(TrafficProfile {
            fingerprint: trace.fingerprint.clone(),
            source: trace.source.clone(),
            records_fitted: recs.len() as u64,
            mean_gap,
            mean_issue_lag,
            cores,
        })
    }

    /// Serializes the profile as a CMPF artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        let mut fp = Vec::new();
        self.fingerprint
            .write_to(&mut fp)
            .expect("Vec writes are infallible");
        payload.put_bytes(&fp);
        payload.put_str(&self.source);
        payload.put_u64(self.records_fitted);
        payload.put_f64(self.mean_gap);
        payload.put_f64(self.mean_issue_lag);
        payload.put_u32(self.cores.len() as u32);
        for c in &self.cores {
            c.encode(&mut payload);
        }
        let payload = payload.into_bytes();
        let mut crc = Crc32::new();
        crc.update(&payload);
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(&PROFILE_MAGIC);
        out.extend_from_slice(&PROFILE_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    /// Deserializes a CMPF artifact.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on bad magic, unsupported version,
    /// truncation, checksum mismatch, or a malformed payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let corrupt = |msg: String| TraceError::Corrupt(msg);
        if bytes.len() < 12 || bytes[..4] != PROFILE_MAGIC {
            return Err(corrupt("not a critmem profile (bad CMPF magic)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != PROFILE_VERSION {
            return Err(corrupt(format!(
                "unsupported profile version {version} (reader supports {PROFILE_VERSION})"
            )));
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let Some(payload) = bytes.get(12..12 + len) else {
            return Err(corrupt(format!(
                "profile truncated (payload wants {len} bytes, {} present)",
                bytes.len().saturating_sub(12)
            )));
        };
        let Some(stored) = bytes
            .get(12 + len..12 + len + 4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        else {
            return Err(corrupt("profile truncated (checksum missing)".into()));
        };
        let mut crc = Crc32::new();
        crc.update(payload);
        let computed = crc.finish();
        if stored != computed {
            return Err(corrupt(format!(
                "profile checksum mismatch (stored {stored:#010X}, computed {computed:#010X})"
            )));
        }
        let decode_err = |e: CodecError| TraceError::Corrupt(format!("malformed profile: {e}"));
        let mut r = ByteReader::new(payload);
        let fp_blob = r.get_bytes().map_err(decode_err)?;
        let fingerprint = Fingerprint::read_from(&mut &fp_blob[..])?;
        let source = r.get_str().map_err(decode_err)?;
        let records_fitted = r.get_u64().map_err(decode_err)?;
        let mean_gap = r.get_f64().map_err(decode_err)?;
        let mean_issue_lag = r.get_f64().map_err(decode_err)?;
        let ncores = r.get_u32().map_err(decode_err)? as usize;
        let cores = (0..ncores)
            .map(|_| CoreProfile::decode(&mut r).map_err(decode_err))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TrafficProfile {
            fingerprint,
            source,
            records_fitted,
            mean_gap,
            mean_issue_lag,
            cores,
        })
    }

    /// Writes the CMPF artifact to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a CMPF artifact from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Per-core generator state.
struct CoreGen {
    profile: CoreProfile,
    /// First row of this core's private address span (spans are
    /// disjoint so synthesized cores never false-share rows).
    base_row: u64,
    /// Current row within the footprint, for row-locality draws.
    cur_row: u64,
}

/// Deterministic request stream drawn from a [`TrafficProfile`].
///
/// Same profile + same seed ⇒ identical stream, always. Unbounded by
/// default; cap with [`SynthSource::with_limit`].
pub struct SynthSource {
    fingerprint: Fingerprint,
    rng: SmallRng,
    mean_gap: f64,
    mean_issue_lag: f64,
    cores: Vec<CoreGen>,
    /// Cumulative core weights for the weighted core pick.
    cum_weights: Vec<f64>,
    total_weight: f64,
    lines_per_row: u64,
    now: u64,
    next_id: u64,
    remaining: Option<u64>,
}

impl SynthSource {
    /// Builds an unbounded generator over `profile`, seeded with
    /// `seed`.
    pub fn new(profile: &TrafficProfile, seed: u64) -> Self {
        let mut base = 0u64;
        let cores = profile
            .cores
            .iter()
            .map(|c| {
                let g = CoreGen {
                    profile: c.clone(),
                    base_row: base,
                    cur_row: 0,
                };
                base += c.footprint_rows;
                g
            })
            .collect::<Vec<_>>();
        let mut cum = 0.0;
        let cum_weights = cores
            .iter()
            .map(|c| {
                cum += c.profile.weight;
                cum
            })
            .collect();
        SynthSource {
            fingerprint: profile.fingerprint.clone(),
            rng: SmallRng::seed_from_u64(seed),
            mean_gap: profile.mean_gap.max(0.0),
            mean_issue_lag: profile.mean_issue_lag.max(0.0),
            cores,
            cum_weights,
            total_weight: cum,
            lines_per_row: (profile.fingerprint.row_bytes / profile.fingerprint.line_bytes.max(1))
                .max(1),
            now: 0,
            next_id: 0,
            remaining: None,
        }
    }

    /// Caps the stream at `n` requests (for bounded experiments and
    /// tests).
    #[must_use]
    pub fn with_limit(mut self, n: u64) -> Self {
        self.remaining = Some(n);
        self
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// One exponential draw with the given mean, rounded to cycles.
    fn exp_cycles(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let u = self.rng.gen_f64();
        (-mean * (1.0 - u).ln()).round() as u64
    }

    /// Draws the next synthesized record, or `None` once the
    /// [`with_limit`](Self::with_limit) cap is exhausted.
    pub fn generate(&mut self) -> Option<TraceRecord> {
        match self.remaining.as_mut() {
            Some(0) => return None,
            Some(n) => *n -= 1,
            None => {}
        }
        // Fixed draw order — arrival gap, core, kind, row, line,
        // criticality, issue lag — so streams are seed-deterministic.
        self.now += self.exp_cycles(self.mean_gap);
        let pick = self.rng.gen_f64() * self.total_weight;
        let core_idx = self
            .cum_weights
            .iter()
            .position(|&c| pick < c)
            .unwrap_or(self.cores.len() - 1);
        let kind_u = self.rng.gen_f64();
        let core = &self.cores[core_idx];
        let kind = if kind_u < core.profile.write_frac {
            AccessKind::Write
        } else if kind_u < core.profile.write_frac + core.profile.prefetch_frac {
            AccessKind::Prefetch
        } else {
            AccessKind::Read
        };
        let stay = self.rng.gen_bool(core.profile.row_hit_frac);
        let footprint = core.profile.footprint_rows;
        let row = if stay || footprint <= 1 {
            self.cores[core_idx].cur_row
        } else {
            let r = self.rng.gen_range(0..footprint);
            self.cores[core_idx].cur_row = r;
            r
        };
        let line = self.rng.gen_range(0..self.lines_per_row);
        let (crit_frac, mean_crit, base_row) = {
            let c = &self.cores[core_idx];
            (c.profile.crit_frac, c.profile.mean_crit, c.base_row)
        };
        let crit = if kind == AccessKind::Read && self.rng.gen_bool(crit_frac) {
            let hi = (mean_crit.round() as u64).max(1) * 2;
            self.rng.gen_range(1..hi + 1)
        } else {
            0
        };
        let lag = self.exp_cycles(self.mean_issue_lag);
        let addr =
            (base_row + row) * self.fingerprint.row_bytes + line * self.fingerprint.line_bytes;
        let rec = TraceRecord {
            enqueue_cycle: self.now,
            issued_at: self.now.saturating_sub(lag),
            id: self.next_id,
            addr,
            crit,
            core: core_idx as u8,
            kind,
        };
        self.next_id += 1;
        Some(rec)
    }
}

impl RequestSource for SynthSource {
    fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        Ok(self.generate())
    }

    fn len_hint(&self) -> Option<u64> {
        self.remaining
    }
}

impl std::fmt::Debug for SynthSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthSource")
            .field("generated", &self.next_id)
            .field("remaining", &self.remaining)
            .field("mean_gap", &self.mean_gap)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_dram::DramConfig;

    fn sample_trace() -> Trace {
        let cfg = DramConfig::paper_baseline();
        let records = (0..1_000u64)
            .map(|i| TraceRecord {
                enqueue_cycle: i * 6,
                issued_at: (i * 6).saturating_sub(i % 11),
                id: i,
                addr: ((i % 4) << 20) | ((i % 97) * 64),
                crit: if i % 4 == 0 { 1 + i % 16 } else { 0 },
                core: (i % 8) as u8,
                kind: match i % 10 {
                    0..=2 => AccessKind::Write,
                    3 => AccessKind::Prefetch,
                    _ => AccessKind::Read,
                },
            })
            .collect();
        Trace {
            fingerprint: Fingerprint::of(8, 4_270, &cfg),
            source: "synthfit".into(),
            records,
        }
    }

    #[test]
    fn fit_produces_a_sane_profile() {
        let profile = TrafficProfile::fit(&sample_trace()).unwrap();
        assert_eq!(profile.records_fitted, 1_000);
        assert_eq!(profile.cores.len(), 8);
        let weight_sum: f64 = profile.cores.iter().map(|c| c.weight).sum();
        assert!(
            (weight_sum - 1.0).abs() < 1e-9,
            "weights sum to {weight_sum}"
        );
        assert!((profile.mean_gap - 6.0).abs() < 0.1, "{}", profile.mean_gap);
        for (i, c) in profile.cores.iter().enumerate() {
            assert!(c.write_frac >= 0.0 && c.write_frac <= 1.0, "core {i}");
            assert!(c.row_hit_frac >= 0.0 && c.row_hit_frac <= 1.0, "core {i}");
            assert!(c.footprint_rows >= 1, "core {i}");
        }
    }

    #[test]
    fn fitting_an_empty_trace_is_an_error() {
        let trace = Trace {
            records: vec![],
            ..sample_trace()
        };
        let err = TrafficProfile::fit(&trace).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("empty trace"), "{err}");
    }

    #[test]
    fn cmpf_artifact_round_trips() {
        let profile = TrafficProfile::fit(&sample_trace()).unwrap();
        let bytes = profile.to_bytes();
        assert_eq!(&bytes[..4], b"CMPF");
        assert_eq!(TrafficProfile::from_bytes(&bytes).unwrap(), profile);
    }

    #[test]
    fn cmpf_corruption_is_typed() {
        let bytes = TrafficProfile::fit(&sample_trace()).unwrap().to_bytes();
        // Bad magic.
        let err = TrafficProfile::from_bytes(b"NOPE").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Future version.
        let mut v = bytes.clone();
        v[4] = 0xFF;
        let err = TrafficProfile::from_bytes(&v).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Truncation.
        let err = TrafficProfile::from_bytes(&bytes[..bytes.len() - 9]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Bit flip in the payload.
        let mut flip = bytes.clone();
        let mid = 12 + (bytes.len() - 16) / 2;
        flip[mid] ^= 0x10;
        let err = TrafficProfile::from_bytes(&flip).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn same_seed_is_byte_deterministic() {
        let profile = TrafficProfile::fit(&sample_trace()).unwrap();
        let draw = |seed| {
            let mut s = SynthSource::new(&profile, seed).with_limit(2_000);
            std::iter::from_fn(|| s.generate()).collect::<Vec<_>>()
        };
        let (a, b) = (draw(7), draw(7));
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, b, "same seed must reproduce the stream exactly");
        let c = draw(8);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn synthesized_stream_is_well_formed() {
        let profile = TrafficProfile::fit(&sample_trace()).unwrap();
        let mut s = SynthSource::new(&profile, 3).with_limit(5_000);
        let mut prev = 0u64;
        let mut kinds = [0u64; 3];
        let mut crits = 0u64;
        while let Some(rec) = s.generate() {
            assert!(
                rec.enqueue_cycle >= prev,
                "arrivals must be nondecreasing ({} after {prev})",
                rec.enqueue_cycle
            );
            assert!(rec.issued_at <= rec.enqueue_cycle);
            assert!((rec.core as usize) < profile.cores.len());
            prev = rec.enqueue_cycle;
            kinds[match rec.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
                AccessKind::Prefetch => 2,
            }] += 1;
            crits += u64::from(rec.crit > 0);
        }
        assert_eq!(s.generated(), 5_000);
        assert_eq!(s.len_hint(), Some(0));
        // The fitted mix (70% reads, 30% writes+prefetch, 25%-ish
        // critical) must show up in the synthesized traffic.
        assert!(kinds[0] > kinds[1] && kinds[1] > kinds[2], "{kinds:?}");
        assert!(crits > 0, "criticality mix was dropped");
    }

    #[test]
    fn per_core_address_spans_are_disjoint() {
        let profile = TrafficProfile::fit(&sample_trace()).unwrap();
        let row_bytes = profile.fingerprint.row_bytes;
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut base = 0u64;
        for c in &profile.cores {
            spans.push((base, base + c.footprint_rows));
            base += c.footprint_rows;
        }
        let mut s = SynthSource::new(&profile, 11).with_limit(3_000);
        while let Some(rec) = s.generate() {
            let row = rec.addr / row_bytes;
            let (lo, hi) = spans[rec.core as usize];
            assert!(
                row >= lo && row < hi,
                "core {} row {row} outside its span [{lo}, {hi})",
                rec.core
            );
        }
    }
}
