//! Bounded-memory streaming over CMTR files, and the [`RequestSource`]
//! seam that makes [`crate::TraceReplayer`] source-agnostic.
//!
//! [`crate::Trace::load`] materializes every record before replay
//! starts — 42 bytes per request, which caps study horizons at what
//! fits in RAM. [`TraceStream`] instead iterates the file
//! *chunk-at-a-time* over the format's per-256-record CRC-32 framing
//! (see [`crate::format`]): one reusable buffer holds the current
//! chunk (`[`CHUNK_BYTES`]` = 256 × 42 + 4 bytes), the whole chunk is
//! read ahead in a single I/O call and checksum-verified, and records
//! are decoded out of the buffer on demand. Peak resident memory is
//! one chunk regardless of trace length.
//!
//! Both the in-memory path ([`TraceSource`]) and the stream implement
//! [`RequestSource`], as does the profile-driven generator
//! ([`crate::SynthSource`]) — the replayer pulls records through the
//! trait and never sees the difference. Replay of the same CMTR file
//! through either source is byte-identical (capture emits records in
//! nondecreasing enqueue order, which the stream preserves and the
//! in-memory path's stable sort leaves untouched).
//!
//! # Examples
//!
//! ```no_run
//! use critmem_trace::{ReplayConfig, TraceReplayer, TraceStream};
//! use critmem_dram::{DramSystem, Fcfs};
//!
//! let mut stream = TraceStream::open(std::path::Path::new("big.cmtr")).unwrap();
//! let cfg = stream.fingerprint().dram_config().unwrap();
//! let dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
//! let stats = TraceReplayer::from_source(&mut stream, dram, ReplayConfig::default())
//!     .unwrap()
//!     .try_run()
//!     .unwrap();
//! assert_eq!(stats.completed, stream.records_read());
//! assert!(stream.peak_resident_bytes() <= critmem_trace::CHUNK_BYTES);
//! ```

use crate::format::{
    read_header, Fingerprint, Trace, TraceError, TraceRecord, CHUNK_RECORDS, RECORD_BYTES,
};
use critmem_common::crc32::Crc32;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

/// On-disk size of one full chunk: 256 records plus the trailing
/// CRC-32. The streaming reader's buffer never grows past this.
pub const CHUNK_BYTES: usize = CHUNK_RECORDS * RECORD_BYTES + 4;

/// A pull-based stream of trace records feeding a
/// [`crate::TraceReplayer`].
///
/// Records must arrive in nondecreasing `enqueue_cycle` order (the
/// order capture emits them); the replayer injects each record when
/// the replay clock reaches its cycle.
pub trait RequestSource {
    /// Topology fingerprint the records were captured on (or
    /// synthesized for); replay validates it against the DRAM system.
    fn fingerprint(&self) -> &Fingerprint;

    /// The next record, or `Ok(None)` once the source is exhausted.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on a corrupt or truncated backing stream.
    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError>;

    /// Records remaining, when the source knows (bounded sources).
    /// `None` for unbounded or abandoned-capture streams. Used for
    /// watchdog diagnostics only.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A `&mut` source is a source: lets callers keep ownership (e.g. to
/// read [`TraceStream::peak_resident_bytes`] after the replay).
impl<S: RequestSource + ?Sized> RequestSource for &mut S {
    fn fingerprint(&self) -> &Fingerprint {
        (**self).fingerprint()
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        (**self).next_record()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// The in-memory [`RequestSource`]: a fully loaded [`Trace`], stably
/// sorted by enqueue cycle (so hand-built traces behave like captured
/// ones).
#[derive(Debug, Clone)]
pub struct TraceSource {
    fingerprint: Fingerprint,
    records: Vec<TraceRecord>,
    idx: usize,
}

impl From<Trace> for TraceSource {
    fn from(trace: Trace) -> Self {
        let mut records = trace.records;
        // Capture emits records in nondecreasing enqueue order already;
        // sort stably so hand-built traces behave too.
        records.sort_by_key(|r| r.enqueue_cycle);
        TraceSource {
            fingerprint: trace.fingerprint,
            records,
            idx: 0,
        }
    }
}

impl RequestSource for TraceSource {
    fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let rec = self.records.get(self.idx).copied();
        self.idx += rec.is_some() as usize;
        Ok(rec)
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.idx) as u64)
    }
}

/// Chunk-at-a-time CMTR reader with bounded resident memory.
///
/// Each refill reads one whole chunk (records + CRC) into a reusable
/// buffer with a single I/O call and verifies the checksum before any
/// record is handed out; a flipped bit therefore surfaces as
/// [`TraceError::Corrupt`] *before* the replayer sees the chunk, not
/// after. Torn tails are typed: a finished stream (header carries a
/// record count) that ends early is `Corrupt("stream truncated …")`;
/// an abandoned stream (no `finish`) reads every complete record and
/// reports a partial trailing record as `Corrupt("torn record …")`,
/// with only its final sub-chunk unverified (its CRC was never
/// written).
pub struct TraceStream<R: Read> {
    r: R,
    fingerprint: Fingerprint,
    source: String,
    /// Declared records left to read; `None` for abandoned streams.
    remaining: Option<u64>,
    /// The reusable chunk buffer (capacity never exceeds
    /// [`CHUNK_BYTES`]).
    buf: Vec<u8>,
    /// Records decoded-able from `buf` this refill.
    rec_in_buf: usize,
    /// Next record index within `buf`.
    next_rec: usize,
    done: bool,
    chunks_read: u64,
    records_read: u64,
    peak_resident: usize,
}

impl TraceStream<BufReader<File>> {
    /// Opens a CMTR file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and header-format errors.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceStream<R> {
    /// Parses the header and prepares the chunk buffer.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, unsupported version, or I/O errors.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let header = read_header(&mut r)?;
        Ok(TraceStream {
            r,
            fingerprint: header.fingerprint,
            source: header.source,
            remaining: header.declared,
            buf: Vec::with_capacity(CHUNK_BYTES),
            rec_in_buf: 0,
            next_rec: 0,
            done: false,
            chunks_read: 0,
            records_read: 0,
            peak_resident: 0,
        })
    }

    /// The capturing system's fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The workload label recorded at capture time.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Declared record count still unread, if the stream was finished
    /// cleanly.
    pub fn declared_remaining(&self) -> Option<u64> {
        self.remaining
    }

    /// Chunks pulled off the backing reader so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Records handed out so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Largest number of trace bytes ever resident in the chunk
    /// buffer — at most [`CHUNK_BYTES`], by construction.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    /// Reads the next chunk into the reusable buffer and verifies its
    /// CRC. Returns `false` when the stream is exhausted.
    fn refill(&mut self) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        let want_records = match self.remaining {
            Some(0) => {
                self.done = true;
                return Ok(false);
            }
            Some(n) => n.min(CHUNK_RECORDS as u64) as usize,
            None => CHUNK_RECORDS,
        };
        let want = want_records * RECORD_BYTES + 4;
        self.buf.resize(want, 0);
        let got = read_full(&mut self.r, &mut self.buf)?;
        self.peak_resident = self.peak_resident.max(got);
        let verified_records = if let Some(n) = self.remaining.as_mut() {
            // Finished stream: the header promised these bytes.
            if got < want {
                return Err(TraceError::Corrupt(format!(
                    "stream truncated mid-chunk ({got} of {want} bytes)"
                )));
            }
            *n -= want_records as u64;
            Some(want_records)
        } else if got == want {
            Some(CHUNK_RECORDS)
        } else {
            // Abandoned stream: EOF lands wherever the capture died.
            self.done = true;
            if got == 0 {
                return Ok(false);
            }
            let body = CHUNK_RECORDS * RECORD_BYTES;
            if got >= body || got % RECORD_BYTES == 0 {
                // Torn before (or inside) the chunk CRC: every complete
                // record is usable, just unverified.
                self.rec_in_buf = got.min(body) / RECORD_BYTES;
                self.next_rec = 0;
                self.chunks_read += 1;
                return Ok(true);
            }
            return Err(TraceError::Corrupt(format!(
                "torn record at end of unfinished stream ({} trailing bytes)",
                got % RECORD_BYTES
            )));
        };
        if let Some(records) = verified_records {
            let body = records * RECORD_BYTES;
            let mut crc = Crc32::new();
            crc.update(&self.buf[..body]);
            let computed = crc.finish();
            let stored = u32::from_le_bytes(self.buf[body..body + 4].try_into().unwrap());
            if stored != computed {
                return Err(TraceError::Corrupt(format!(
                    "chunk checksum mismatch (stored {stored:#010X}, computed {computed:#010X})"
                )));
            }
            self.rec_in_buf = records;
        }
        self.next_rec = 0;
        self.chunks_read += 1;
        Ok(true)
    }

    /// Decodes the next record out of the chunk buffer, refilling when
    /// the buffer is spent; `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on a truncated finished stream, a
    /// chunk-checksum mismatch, or a torn trailing record; I/O errors
    /// otherwise.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.next_rec == self.rec_in_buf && !self.refill()? {
            return Ok(None);
        }
        let off = self.next_rec * RECORD_BYTES;
        let rec = TraceRecord::read_from(&mut &self.buf[off..off + RECORD_BYTES])?;
        self.next_rec += 1;
        self.records_read += 1;
        Ok(Some(rec))
    }
}

impl<R: Read> RequestSource for TraceStream<R> {
    fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        TraceStream::next_record(self)
    }

    fn len_hint(&self) -> Option<u64> {
        self.remaining
            .map(|n| n + (self.rec_in_buf - self.next_rec) as u64)
    }
}

impl<R: Read> std::fmt::Debug for TraceStream<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("source", &self.source)
            .field("records_read", &self.records_read)
            .field("chunks_read", &self.chunks_read)
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

/// Reads until `buf` is full or EOF; returns the byte count (unlike
/// `read_exact`, a short read is reported, not an error).
fn read_full<R: Read>(r: &mut R, mut buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                buf = &mut buf[n..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceWriter, VERSION};
    use critmem_common::AccessKind;
    use critmem_dram::DramConfig;
    use std::io::Cursor;

    fn fingerprint() -> Fingerprint {
        Fingerprint::of(8, 4_270, &DramConfig::paper_baseline())
    }

    fn records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                enqueue_cycle: i * 3,
                issued_at: i * 3,
                id: i,
                addr: i * 64,
                crit: i % 7,
                core: (i % 8) as u8,
                kind: if i % 5 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            })
            .collect()
    }

    fn finished_bytes(recs: &[TraceRecord]) -> Vec<u8> {
        Trace {
            fingerprint: fingerprint(),
            source: "t".into(),
            records: recs.to_vec(),
        }
        .to_bytes()
        .unwrap()
    }

    fn abandoned_bytes(recs: &[TraceRecord]) -> Vec<u8> {
        let mut tw = TraceWriter::new(Cursor::new(Vec::new()), &fingerprint(), "t").unwrap();
        for r in recs {
            tw.append(r).unwrap();
        }
        // No finish(): the count stays at the streaming placeholder.
        tw.w.into_inner()
    }

    fn drain(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
        let mut s = TraceStream::new(Cursor::new(bytes))?;
        let mut out = Vec::new();
        while let Some(rec) = s.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    #[test]
    fn stream_matches_bulk_reader_across_chunk_boundaries() {
        for n in [0u64, 1, 255, 256, 257, 600, 2 * 256 + 37] {
            let recs = records(n);
            let bytes = finished_bytes(&recs);
            let streamed = drain(&bytes).unwrap();
            assert_eq!(streamed, recs, "count {n}");
        }
    }

    #[test]
    fn resident_memory_is_one_chunk() {
        let recs = records(5 * 256 + 19);
        let bytes = finished_bytes(&recs);
        let mut s = TraceStream::new(Cursor::new(&bytes)).unwrap();
        while s.next_record().unwrap().is_some() {}
        assert_eq!(s.records_read(), recs.len() as u64);
        assert_eq!(s.chunks_read(), 6);
        assert!(s.peak_resident_bytes() <= CHUNK_BYTES);
        assert!(s.buf.capacity() <= CHUNK_BYTES);
    }

    #[test]
    fn truncated_finished_stream_is_corrupt() {
        let bytes = finished_bytes(&records(100));
        for cut in [5usize, 43, 4] {
            let err = drain(&bytes[..bytes.len() - cut]).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "cut {cut}: {err:?}");
            assert!(err.to_string().contains("truncated"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn bit_flip_is_caught_before_any_record_escapes() {
        let bytes = finished_bytes(&records(300));
        // Flip a bit in the first chunk's records.
        let mut corrupt = bytes.clone();
        let flip_at = bytes.len() - (300 * RECORD_BYTES + 2 * 4) + 10;
        corrupt[flip_at] ^= 0x40;
        let mut s = TraceStream::new(Cursor::new(&corrupt)).unwrap();
        // The very first pull fails: the chunk is verified on refill,
        // before any of its records is handed out.
        let err = s.next_record().unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert_eq!(s.records_read(), 0);
    }

    #[test]
    fn abandoned_stream_reads_complete_records() {
        // Mid-chunk abandonment: all records readable, unverified.
        let recs = records(300);
        let bytes = abandoned_bytes(&recs);
        assert_eq!(drain(&bytes).unwrap(), recs);
        // Abandonment exactly at a chunk boundary (CRC present).
        let recs = records(256);
        assert_eq!(drain(&abandoned_bytes(&recs)).unwrap(), recs);
    }

    #[test]
    fn torn_tail_of_abandoned_stream_is_typed() {
        let recs = records(10);
        let mut bytes = abandoned_bytes(&recs);
        // Tear the last record in half.
        bytes.truncate(bytes.len() - RECORD_BYTES / 2);
        let err = drain(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("torn record"), "{err}");
    }

    #[test]
    fn header_errors_are_preserved() {
        assert!(matches!(
            TraceStream::new(Cursor::new(b"NOPE....".to_vec())).unwrap_err(),
            TraceError::BadMagic
        ));
        let mut bytes = finished_bytes(&records(4));
        bytes[4] = 0xFF;
        assert!(matches!(
            TraceStream::new(Cursor::new(&bytes)).unwrap_err(),
            TraceError::UnsupportedVersion(v) if v != VERSION
        ));
    }

    #[test]
    fn trace_source_sorts_and_counts_down() {
        let mut recs = records(5);
        recs.swap(0, 4);
        let mut src = TraceSource::from(Trace {
            fingerprint: fingerprint(),
            source: "t".into(),
            records: recs,
        });
        assert_eq!(src.len_hint(), Some(5));
        let first = src.next_record().unwrap().unwrap();
        assert_eq!(first.enqueue_cycle, 0, "must be stably sorted");
        assert_eq!(src.len_hint(), Some(4));
        while src.next_record().unwrap().is_some() {}
        assert_eq!(src.len_hint(), Some(0));
        assert!(src.next_record().unwrap().is_none());
    }
}
