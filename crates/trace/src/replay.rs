//! The replay side: drive a [`DramSystem`] directly from a captured
//! trace, skipping the cores and cache hierarchy entirely.
//!
//! Replay preserves the capturing run's clock structure: requests are
//! injected at their recorded *CPU* cycles (before the divided DRAM
//! tick of the same cycle, exactly as the execution-driven system
//! enqueues before ticking), and the CPU→DRAM clock crossing uses the
//! same Bresenham divider. With the same scheduler and controller
//! configuration as the capture, queue evolution is therefore identical
//! and per-channel request counts and row-hit/miss/conflict breakdowns
//! reproduce exactly. With a *different* scheduler — the intended use —
//! the recorded arrival times become an open-loop approximation of the
//! processor, optionally tightened by a closed-loop throttle
//! ([`ReplayConfig::max_outstanding`]) that mimics MSHR back-pressure.

use crate::format::{Fingerprint, Trace, TraceError, TraceRecord};
use crate::stream::{RequestSource, TraceSource};
use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::{
    ClockDivider, Observable, Sampler, Schema, SeriesSet, SimError, WatchdogConfig, WatchdogReason,
    WatchdogSnapshot,
};
use critmem_dram::{timing::preset_by_name, ChannelStats, DramConfig, DramSystem};
use std::collections::HashMap;

impl Fingerprint {
    /// Reconstructs a [`DramConfig`] with this fingerprint's topology,
    /// taking controller *policy* knobs (queue capacity, watermarks,
    /// starvation cap, refresh) from the paper baseline.
    ///
    /// # Errors
    ///
    /// Fails if the preset name is unknown to this build.
    pub fn dram_config(&self) -> Result<DramConfig, TraceError> {
        let preset = preset_by_name(&self.preset).ok_or_else(|| {
            TraceError::FingerprintMismatch(format!("unknown device preset {:?}", self.preset))
        })?;
        let mut cfg = DramConfig::paper_baseline();
        cfg.preset = preset;
        cfg.interleaving = self.interleaving;
        cfg.org.channels = self.channels;
        cfg.org.ranks_per_channel = self.ranks_per_channel;
        cfg.org.banks_per_rank = self.banks_per_rank;
        cfg.org.row_bytes = self.row_bytes;
        cfg.org.line_bytes = self.line_bytes;
        Ok(cfg)
    }
}

/// Replay pacing, sampling, and fault-detection policy.
///
/// This is the single reference for how the knobs interact (the
/// `Session` builder and CLI flags all funnel into this struct):
///
/// - **Stopping.** The replay ends when the source is exhausted and
///   every outstanding request has drained — unless
///   [`stop_at_cycle`](Self::stop_at_cycle) harvests early, or
///   [`max_cycles`](Self::max_cycles) aborts a runaway. For unbounded
///   sources ([`crate::SynthSource`] without a limit), set one of the
///   two or the replay never ends.
/// - **Sampling.** [`sample_epoch`](Self::sample_epoch) turns on the
///   cycle-anchored `obs` sampler; a final sample is always taken at
///   the harvest cycle, whatever stopped the run. On a long-horizon
///   replay the series would grow without bound, so pair it with
///   [`sample_window`](Self::sample_window) to keep only the trailing
///   `W` samples (a sliding window of constant memory). `sample_window`
///   without `sample_epoch` is inert.
/// - **Watchdog.** [`watchdog`](Self::watchdog) runs *independently* of
///   sampling and stop conditions, on its own check interval: the
///   no-commit check watches injections + completions (replay has no
///   cores to commit), and the request-age check watches the DRAM
///   queues exactly as the execution-driven system does. A trip
///   surfaces as a typed [`SimError::Watchdog`] from
///   [`TraceReplayer::try_run`] — sampling does not defer it, and a
///   `stop_at_cycle` harvest cannot race it (the stop check runs
///   first).
///
/// # Examples
///
/// ```
/// use critmem_trace::ReplayConfig;
///
/// // Long-horizon shape: throttled injection, windowed sampling.
/// let cfg = ReplayConfig::default()
///     .with_max_outstanding(64)
///     .with_sampling(10_000)
///     .with_sample_window(512);
/// assert_eq!(cfg.sample_epoch, Some(10_000));
/// assert_eq!(cfg.sample_window, Some(512));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Closed-loop throttle: cap on requests in flight. `None` injects
    /// purely by recorded cycle (open loop — and *exact* when scheduler
    /// and controller config match the capture). A `Some(n)` cap mimics
    /// the MSHR back-pressure of the capturing machine: a request whose
    /// recorded cycle has arrived still waits until a slot frees up.
    pub max_outstanding: Option<usize>,
    /// Harvest statistics after exactly this many CPU cycles instead of
    /// draining every outstanding request. Set to the capturing run's
    /// final cycle to compare replay statistics against the execution
    /// run bit-for-bit (the execution run also stops with requests in
    /// flight the moment every core commits its target).
    pub stop_at_cycle: Option<u64>,
    /// Deadlock guard: abort if the replay exceeds this many CPU cycles.
    pub max_cycles: u64,
    /// When set, sample the per-channel DRAM metrics every `N` CPU
    /// cycles into [`ReplayStats::series`].
    pub sample_epoch: Option<u64>,
    /// When set (with `sample_epoch`), retain only the trailing `W`
    /// samples — the sliding window that keeps unbounded-horizon
    /// replays at constant memory. `None` keeps the full series.
    pub sample_window: Option<usize>,
    /// Forward-progress watchdog; see the struct-level docs for how it
    /// interacts with sampling and the stop conditions.
    pub watchdog: WatchdogConfig,
    /// Attaches the shadow protocol auditor to every DRAM channel for
    /// the replay. Auditing never changes scheduling decisions — an
    /// audited replay is byte-identical to an unaudited one — but a
    /// timing or bank-state violation surfaces as a typed
    /// [`SimError::AuditViolation`] from [`TraceReplayer::try_run`].
    pub audit: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            max_outstanding: None,
            stop_at_cycle: None,
            max_cycles: 10_000_000_000,
            sample_epoch: None,
            sample_window: None,
            watchdog: WatchdogConfig::default(),
            audit: false,
        }
    }
}

impl ReplayConfig {
    /// Caps requests in flight (the closed-loop throttle).
    #[must_use]
    pub fn with_max_outstanding(mut self, cap: usize) -> Self {
        self.max_outstanding = Some(cap);
        self
    }

    /// Harvests statistics at exactly `cycle` instead of draining.
    #[must_use]
    pub fn with_stop_at_cycle(mut self, cycle: u64) -> Self {
        self.stop_at_cycle = Some(cycle);
        self
    }

    /// Samples per-channel metrics every `epoch` CPU cycles into
    /// [`ReplayStats::series`] (same name as
    /// `critmem::SystemConfig::with_sampling`).
    #[must_use]
    pub fn with_sampling(mut self, epoch: u64) -> Self {
        self.sample_epoch = Some(epoch);
        self
    }

    /// Caps the sampled series at the trailing `window` samples (the
    /// constant-memory knob for unbounded-horizon replays). Inert
    /// unless [`Self::with_sampling`] is also set.
    #[must_use]
    pub fn with_sample_window(mut self, window: usize) -> Self {
        self.sample_window = Some(window);
        self
    }

    /// Enables the shadow protocol auditor ([`Self::audit`]).
    #[must_use]
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }
}

/// Statistics of one replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Requests injected into the DRAM system.
    pub injected: u64,
    /// Requests whose completion was observed.
    pub completed: u64,
    /// CPU cycles simulated until the last completion.
    pub cpu_cycles: u64,
    /// CPU cycles on which injection stalled against the
    /// `max_outstanding` throttle.
    pub throttled_cycles: u64,
    /// Injection attempts bounced off a full transaction queue.
    pub queue_full_retries: u64,
    /// Demand reads completed.
    pub reads: u64,
    /// Total demand-read latency (CPU cycles, injection to completion).
    pub read_latency_sum: u64,
    /// Critical demand reads completed.
    pub critical_reads: u64,
    /// Total latency of critical demand reads.
    pub critical_read_latency_sum: u64,
    /// Criticality-weighted latency: Σ latency × (1 + magnitude). The
    /// scalar a criticality-aware scheduler is built to minimize.
    pub weighted_latency_sum: u128,
    /// Final per-channel controller statistics.
    pub channels: Vec<ChannelStats>,
    /// Cycle-sampled DRAM metrics, present when
    /// [`ReplayConfig::sample_epoch`] was set.
    pub series: Option<SeriesSet>,
}

impl ReplayStats {
    /// Mean demand-read latency in CPU cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Mean latency of critical demand reads in CPU cycles.
    pub fn mean_critical_read_latency(&self) -> f64 {
        if self.critical_reads == 0 {
            0.0
        } else {
            self.critical_read_latency_sum as f64 / self.critical_reads as f64
        }
    }

    /// Total row hits across channels.
    pub fn row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.row_hits).sum()
    }

    /// Total requests serviced across channels (reads + writes).
    pub fn requests_serviced(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.reads_completed + c.writes_completed)
            .sum()
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        for v in [
            self.injected,
            self.completed,
            self.cpu_cycles,
            self.throttled_cycles,
            self.queue_full_retries,
            self.reads,
            self.read_latency_sum,
            self.critical_reads,
            self.critical_read_latency_sum,
        ] {
            w.put_u64(v);
        }
        w.put_u128(self.weighted_latency_sum);
        w.put_u32(self.channels.len() as u32);
        for c in &self.channels {
            c.encode(w);
        }
        w.put_bool(self.series.is_some());
        if let Some(series) = &self.series {
            series.encode(w);
        }
    }

    /// Deserializes journaled replay statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let injected = r.get_u64()?;
        let completed = r.get_u64()?;
        let cpu_cycles = r.get_u64()?;
        let throttled_cycles = r.get_u64()?;
        let queue_full_retries = r.get_u64()?;
        let reads = r.get_u64()?;
        let read_latency_sum = r.get_u64()?;
        let critical_reads = r.get_u64()?;
        let critical_read_latency_sum = r.get_u64()?;
        let weighted_latency_sum = r.get_u128()?;
        let n_channels = r.get_u32()? as usize;
        let channels = (0..n_channels)
            .map(|_| ChannelStats::decode(r))
            .collect::<Result<Vec<_>, _>>()?;
        let series = if r.get_bool()? {
            Some(SeriesSet::decode(r)?)
        } else {
            None
        };
        Ok(ReplayStats {
            injected,
            completed,
            cpu_cycles,
            throttled_cycles,
            queue_full_retries,
            reads,
            read_latency_sum,
            critical_reads,
            critical_read_latency_sum,
            weighted_latency_sum,
            channels,
            series,
        })
    }
}

/// Drives a [`DramSystem`] from a [`RequestSource`] — a fully loaded
/// trace ([`TraceSource`]), a bounded-memory file stream
/// ([`crate::TraceStream`]), or a profile-driven synthesizer
/// ([`crate::SynthSource`]). The replay loop is identical for every
/// source, so streamed replay of a CMTR file is byte-identical to
/// in-memory replay of the same file.
pub struct TraceReplayer<S: RequestSource = TraceSource> {
    source: S,
    dram: DramSystem,
    divider: ClockDivider,
    cfg: ReplayConfig,
}

impl<S: RequestSource> std::fmt::Debug for TraceReplayer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReplayer")
            .field("len_hint", &self.source.len_hint())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl TraceReplayer<TraceSource> {
    /// Builds a replayer over a fully loaded trace (the in-memory
    /// path; see [`Self::from_source`] for streams and synthesizers).
    ///
    /// # Errors
    ///
    /// Rejects the pairing if `dram`'s topology does not match the
    /// trace's capture fingerprint (scheduler and queue capacity are
    /// free to differ; organization, preset, and interleaving are not).
    pub fn new(trace: Trace, dram: DramSystem, cfg: ReplayConfig) -> Result<Self, TraceError> {
        Self::from_source(TraceSource::from(trace), dram, cfg)
    }
}

impl<S: RequestSource> TraceReplayer<S> {
    /// Builds a replayer over any [`RequestSource`] — `dram` is
    /// constructed by the caller with whatever scheduler is under
    /// study. Pass `&mut source` to keep ownership (e.g. to read
    /// [`crate::TraceStream::peak_resident_bytes`] afterwards).
    ///
    /// # Errors
    ///
    /// Rejects the pairing if `dram`'s topology does not match the
    /// source's fingerprint (scheduler and queue capacity are free to
    /// differ; organization, preset, and interleaving are not).
    pub fn from_source(source: S, dram: DramSystem, cfg: ReplayConfig) -> Result<Self, TraceError> {
        let fp = source.fingerprint();
        let system_fp = Fingerprint::of(fp.cores as usize, fp.cpu_mhz, dram.config());
        fp.check_compatible(&system_fp)?;
        let divider = ClockDivider::new(fp.bus_mhz, fp.cpu_mhz);
        Ok(TraceReplayer {
            source,
            dram,
            divider,
            cfg,
        })
    }

    /// Runs the source to exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the replay exceeds [`ReplayConfig::max_cycles`] or
    /// the forward-progress watchdog trips (deadlock guard, mirroring
    /// the execution-driven system).
    pub fn run(self) -> ReplayStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Self::run`]: a wedged replay comes back as
    /// a typed [`SimError::Watchdog`] instead of a panic. In the
    /// snapshot, `mshr_occupancy` holds the outstanding request count
    /// and `outbox_len` the records not yet injected (the replayer has
    /// no cores or caches).
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] on a cycle-budget overrun, an injection/
    /// completion stall, or an over-aged DRAM request.
    pub fn try_run(mut self) -> Result<ReplayStats, SimError> {
        if self.cfg.audit {
            self.dram.enable_audit();
        }
        let mut stats = ReplayStats::default();
        let mut sampler = self.cfg.sample_epoch.map(|epoch| {
            let schema = Schema::build(|v| self.dram.observe(v));
            let s = Sampler::new(schema, epoch);
            match self.cfg.sample_window {
                Some(w) => s.with_window(w),
                None => s,
            }
        });
        let trace_err = |e: TraceError| SimError::Trace(e.to_string());
        // One-record lookahead: `pending` is the next record to inject
        // (pulled but not yet accepted); `None` means the source is
        // exhausted. Priming before the loop keeps an empty source at
        // zero cycles, exactly like the old in-memory path.
        let mut pending = self.source.next_record().map_err(trace_err)?;
        let mut outstanding = 0usize;
        let mut inject_cycle: HashMap<u64, u64> = HashMap::new();
        let mut crit_of: HashMap<u64, u64> = HashMap::new();
        let mut now = 0u64;
        let wd = self.cfg.watchdog;
        let mut last_events = 0u64;
        let mut last_event_cycle = 0u64;
        let mut next_check = wd.check_interval;
        while (pending.is_some() || outstanding > 0)
            && self.cfg.stop_at_cycle.is_none_or(|stop| now < stop)
        {
            now += 1;
            if now >= self.cfg.max_cycles {
                return Err(self.watchdog_error(
                    WatchdogReason::CycleLimit {
                        max_cycles: self.cfg.max_cycles,
                    },
                    now,
                    Self::pending_count(&self.source, &pending),
                    outstanding,
                ));
            }
            // Inject every record whose recorded cycle has arrived,
            // respecting the closed-loop throttle and queue space. This
            // happens before the DRAM tick of the same CPU cycle —
            // matching the execution-driven system's step order.
            while let Some(rec) = pending {
                if rec.enqueue_cycle > now {
                    break;
                }
                if let Some(cap) = self.cfg.max_outstanding {
                    if outstanding >= cap {
                        stats.throttled_cycles += 1;
                        break;
                    }
                }
                match self.dram.enqueue(rec.to_request()) {
                    Ok(()) => {
                        outstanding += 1;
                        stats.injected += 1;
                        inject_cycle.insert(rec.id, now);
                        crit_of.insert(rec.id, rec.crit);
                        pending = self.source.next_record().map_err(trace_err)?;
                    }
                    Err(_) => {
                        // Transaction queue full: retry on a later cycle.
                        stats.queue_full_retries += 1;
                        break;
                    }
                }
            }
            if self.divider.tick() {
                for done in self.dram.tick() {
                    outstanding -= 1;
                    stats.completed += 1;
                    let start = inject_cycle.remove(&done.req.id).unwrap_or(now);
                    let crit = crit_of.remove(&done.req.id).unwrap_or(0);
                    let lat = now - start;
                    if done.req.kind.is_demand_read() {
                        stats.reads += 1;
                        stats.read_latency_sum += lat;
                        stats.weighted_latency_sum += u128::from(lat) * u128::from(1 + crit);
                        if crit > 0 {
                            stats.critical_reads += 1;
                            stats.critical_read_latency_sum += lat;
                        }
                    }
                }
            }
            if self.cfg.audit && self.dram.has_audit_violation() {
                let snap = self
                    .dram
                    .take_audit_violation()
                    .expect("has_audit_violation checked");
                return Err(SimError::AuditViolation(snap));
            }
            if let Some(s) = &mut sampler {
                if s.due(now) {
                    s.sample(now, |v| self.dram.observe(v));
                }
            }
            if now >= next_check {
                next_check = now.saturating_add(wd.check_interval);
                if wd.no_commit_cycles > 0 {
                    let events = stats.injected + stats.completed;
                    if events > last_events {
                        last_events = events;
                        last_event_cycle = now;
                    } else if now - last_event_cycle >= wd.no_commit_cycles {
                        let idle_cycles = now - last_event_cycle;
                        return Err(self.watchdog_error(
                            WatchdogReason::NoCommit { idle_cycles },
                            now,
                            Self::pending_count(&self.source, &pending),
                            outstanding,
                        ));
                    }
                }
                if wd.max_request_age > 0 {
                    if let Some(age) = self.dram.oldest_queued_age() {
                        if age > wd.max_request_age {
                            return Err(self.watchdog_error(
                                WatchdogReason::StarvedRequest {
                                    age,
                                    limit: wd.max_request_age,
                                },
                                now,
                                Self::pending_count(&self.source, &pending),
                                outstanding,
                            ));
                        }
                    }
                }
            }
        }
        if self.cfg.audit {
            self.dram.finish_audit();
            if let Some(snap) = self.dram.take_audit_violation() {
                return Err(SimError::AuditViolation(snap));
            }
        }
        stats.cpu_cycles = now;
        stats.channels = self.dram.channel_stats().into_iter().cloned().collect();
        stats.series = sampler.map(|mut s| {
            if s.last_sampled() != Some(now) {
                s.sample(now, |v| self.dram.observe(v));
            }
            s.into_series()
        });
        Ok(stats)
    }

    /// Records not yet injected, for watchdog diagnostics: the one in
    /// the lookahead slot plus whatever the source can count.
    fn pending_count(source: &S, pending: &Option<TraceRecord>) -> usize {
        let hinted = source.len_hint().unwrap_or(0).min(usize::MAX as u64) as usize;
        usize::from(pending.is_some()) + hinted
    }

    /// Builds the diagnostic snapshot for a watchdog trip.
    fn watchdog_error(
        &self,
        reason: WatchdogReason,
        now: u64,
        pending: usize,
        outstanding: usize,
    ) -> SimError {
        SimError::Watchdog(Box::new(WatchdogSnapshot {
            reason,
            cycle: now,
            committed: Vec::new(),
            rob_head_pc: Vec::new(),
            mshr_occupancy: outstanding,
            outbox_len: pending,
            bank_queues: self.dram.bank_queue_snapshot(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::AccessKind;
    use critmem_dram::Fcfs;

    fn synthetic_trace(n: u64) -> Trace {
        let cfg = DramConfig::paper_baseline();
        let fingerprint = Fingerprint::of(8, 4_270, &cfg);
        let records = (0..n)
            .map(|i| TraceRecord {
                enqueue_cycle: 10 + i * 20,
                issued_at: i * 20,
                id: i,
                addr: (i % 64) * 1024 + (i / 64) * 256 * 1024,
                crit: if i % 4 == 0 { 100 + i } else { 0 },
                core: (i % 8) as u8,
                kind: if i % 5 == 4 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            })
            .collect();
        Trace {
            fingerprint,
            source: "synthetic".into(),
            records,
        }
    }

    fn dram_for(trace: &Trace) -> DramSystem {
        let cfg = trace.fingerprint.dram_config().unwrap();
        DramSystem::new(cfg, |_| Box::new(Fcfs::new()))
    }

    #[test]
    fn replay_services_every_record() {
        let trace = synthetic_trace(200);
        let dram = dram_for(&trace);
        let stats = TraceReplayer::new(trace, dram, ReplayConfig::default())
            .unwrap()
            .run();
        assert_eq!(stats.injected, 200);
        assert_eq!(stats.completed, 200);
        assert_eq!(stats.requests_serviced(), 200);
        assert!(stats.reads > 0 && stats.mean_read_latency() > 0.0);
        assert!(stats.critical_reads > 0);
        assert!(stats.weighted_latency_sum > u128::from(stats.read_latency_sum));
    }

    #[test]
    fn throttle_delays_but_conserves() {
        let trace = synthetic_trace(200);
        let open = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        let throttled = TraceReplayer::new(
            trace.clone(),
            dram_for(&trace),
            ReplayConfig {
                max_outstanding: Some(2),
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .run();
        assert_eq!(throttled.completed, 200);
        assert!(throttled.throttled_cycles > 0, "cap of 2 must bite");
        assert!(throttled.cpu_cycles >= open.cpu_cycles);
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let trace = synthetic_trace(10);
        let mut cfg = trace.fingerprint.dram_config().unwrap();
        cfg.org.channels = 2;
        let dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        let err = TraceReplayer::new(trace, dram, ReplayConfig::default()).unwrap_err();
        assert!(matches!(err, TraceError::FingerprintMismatch(_)), "{err}");
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = synthetic_trace(150);
        let a = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        let b = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
        assert_eq!(a.read_latency_sum, b.read_latency_sum);
        assert_eq!(a.row_hits(), b.row_hits());
    }

    #[test]
    fn windowed_sampling_caps_the_series() {
        let trace = synthetic_trace(200);
        let full = TraceReplayer::new(
            trace.clone(),
            dram_for(&trace),
            ReplayConfig::default().with_sampling(100),
        )
        .unwrap()
        .run();
        let windowed = TraceReplayer::new(
            trace.clone(),
            dram_for(&trace),
            ReplayConfig::default()
                .with_sampling(100)
                .with_sample_window(3),
        )
        .unwrap()
        .run();
        let full = full.series.expect("sampling was on");
        let win = windowed.series.expect("sampling was on");
        assert!(full.len() > 3, "trace too short to exercise the window");
        assert_eq!(win.len(), 3);
        // The window keeps the *tail* of the full series.
        assert_eq!(win.cycles(), &full.cycles()[full.len() - 3..]);
    }

    #[test]
    fn streamed_source_replays_identically_to_in_memory() {
        let trace = synthetic_trace(600);
        let bytes = trace.to_bytes().unwrap();
        let memory = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        let mut stream = crate::TraceStream::new(std::io::Cursor::new(&bytes)).unwrap();
        let streamed =
            TraceReplayer::from_source(&mut stream, dram_for(&trace), ReplayConfig::default())
                .unwrap()
                .run();
        let enc = |s: &ReplayStats| {
            let mut w = ByteWriter::new();
            s.encode(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            enc(&memory),
            enc(&streamed),
            "streamed replay must be byte-identical to in-memory replay"
        );
        assert!(stream.peak_resident_bytes() <= crate::CHUNK_BYTES);
    }

    #[test]
    fn audited_replay_is_silent_and_byte_identical() {
        let trace = synthetic_trace(300);
        let plain = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .try_run()
            .unwrap();
        let audited = TraceReplayer::new(
            trace.clone(),
            dram_for(&trace),
            ReplayConfig::default().with_audit(true),
        )
        .unwrap()
        .try_run()
        .expect("a clean replay must not raise audit violations");
        let enc = |s: &ReplayStats| {
            let mut w = ByteWriter::new();
            s.encode(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            enc(&plain),
            enc(&audited),
            "auditing must not perturb the replay"
        );
    }

    #[test]
    fn audited_replay_detects_a_wedged_bank() {
        use critmem_common::{BankId, RankId};
        let trace = synthetic_trace(100);
        let mut dram = dram_for(&trace);
        dram.wedge_bank(0, RankId(0), BankId(0));
        let mut cfg = ReplayConfig::default().with_audit(true);
        cfg.watchdog.no_commit_cycles = 50_000;
        cfg.watchdog.check_interval = 1_024;
        let err = TraceReplayer::new(trace, dram, cfg)
            .unwrap()
            .try_run()
            .expect_err("a wedged bank must never complete silently");
        assert!(
            matches!(err, SimError::Watchdog(_) | SimError::AuditViolation(_)),
            "got {err}"
        );
    }

    #[test]
    fn fingerprint_reconstructs_dram_config() {
        let base = DramConfig::paper_baseline();
        let fp = Fingerprint::of(8, 4_270, &base);
        let cfg = fp.dram_config().unwrap();
        assert_eq!(cfg.org, base.org);
        assert_eq!(cfg.preset.name, base.preset.name);
        assert_eq!(cfg.interleaving, base.interleaving);
    }
}
