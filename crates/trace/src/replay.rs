//! The replay side: drive a [`DramSystem`] directly from a captured
//! trace, skipping the cores and cache hierarchy entirely.
//!
//! Replay preserves the capturing run's clock structure: requests are
//! injected at their recorded *CPU* cycles (before the divided DRAM
//! tick of the same cycle, exactly as the execution-driven system
//! enqueues before ticking), and the CPU→DRAM clock crossing uses the
//! same Bresenham divider. With the same scheduler and controller
//! configuration as the capture, queue evolution is therefore identical
//! and per-channel request counts and row-hit/miss/conflict breakdowns
//! reproduce exactly. With a *different* scheduler — the intended use —
//! the recorded arrival times become an open-loop approximation of the
//! processor, optionally tightened by a closed-loop throttle
//! ([`ReplayConfig::max_outstanding`]) that mimics MSHR back-pressure.

use crate::format::{Fingerprint, Trace, TraceError, TraceRecord};
use critmem_common::codec::{ByteReader, ByteWriter, CodecError};
use critmem_common::{
    ClockDivider, Observable, Sampler, Schema, SeriesSet, SimError, WatchdogConfig, WatchdogReason,
    WatchdogSnapshot,
};
use critmem_dram::{timing::preset_by_name, ChannelStats, DramConfig, DramSystem};
use std::collections::HashMap;

impl Fingerprint {
    /// Reconstructs a [`DramConfig`] with this fingerprint's topology,
    /// taking controller *policy* knobs (queue capacity, watermarks,
    /// starvation cap, refresh) from the paper baseline.
    ///
    /// # Errors
    ///
    /// Fails if the preset name is unknown to this build.
    pub fn dram_config(&self) -> Result<DramConfig, TraceError> {
        let preset = preset_by_name(&self.preset).ok_or_else(|| {
            TraceError::FingerprintMismatch(format!("unknown device preset {:?}", self.preset))
        })?;
        let mut cfg = DramConfig::paper_baseline();
        cfg.preset = preset;
        cfg.interleaving = self.interleaving;
        cfg.org.channels = self.channels;
        cfg.org.ranks_per_channel = self.ranks_per_channel;
        cfg.org.banks_per_rank = self.banks_per_rank;
        cfg.org.row_bytes = self.row_bytes;
        cfg.org.line_bytes = self.line_bytes;
        Ok(cfg)
    }
}

/// Replay pacing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Closed-loop throttle: cap on requests in flight. `None` injects
    /// purely by recorded cycle (open loop — and *exact* when scheduler
    /// and controller config match the capture). A `Some(n)` cap mimics
    /// the MSHR back-pressure of the capturing machine: a request whose
    /// recorded cycle has arrived still waits until a slot frees up.
    pub max_outstanding: Option<usize>,
    /// Harvest statistics after exactly this many CPU cycles instead of
    /// draining every outstanding request. Set to the capturing run's
    /// final cycle to compare replay statistics against the execution
    /// run bit-for-bit (the execution run also stops with requests in
    /// flight the moment every core commits its target).
    pub stop_at_cycle: Option<u64>,
    /// Deadlock guard: abort if the replay exceeds this many CPU cycles.
    pub max_cycles: u64,
    /// When set, sample the per-channel DRAM metrics every `N` CPU
    /// cycles into [`ReplayStats::series`].
    pub sample_epoch: Option<u64>,
    /// Forward-progress watchdog. For replay, the commit check watches
    /// injections + completions (there are no cores); the request-age
    /// check watches the DRAM queues exactly as in the execution-driven
    /// system.
    pub watchdog: WatchdogConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            max_outstanding: None,
            stop_at_cycle: None,
            max_cycles: 10_000_000_000,
            sample_epoch: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl ReplayConfig {
    /// Caps requests in flight (the closed-loop throttle).
    #[must_use]
    pub fn with_max_outstanding(mut self, cap: usize) -> Self {
        self.max_outstanding = Some(cap);
        self
    }

    /// Harvests statistics at exactly `cycle` instead of draining.
    #[must_use]
    pub fn with_stop_at_cycle(mut self, cycle: u64) -> Self {
        self.stop_at_cycle = Some(cycle);
        self
    }

    /// Samples per-channel metrics every `epoch` CPU cycles into
    /// [`ReplayStats::series`] (same name as
    /// `critmem::SystemConfig::with_sampling`).
    #[must_use]
    pub fn with_sampling(mut self, epoch: u64) -> Self {
        self.sample_epoch = Some(epoch);
        self
    }
}

/// Statistics of one replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Requests injected into the DRAM system.
    pub injected: u64,
    /// Requests whose completion was observed.
    pub completed: u64,
    /// CPU cycles simulated until the last completion.
    pub cpu_cycles: u64,
    /// CPU cycles on which injection stalled against the
    /// `max_outstanding` throttle.
    pub throttled_cycles: u64,
    /// Injection attempts bounced off a full transaction queue.
    pub queue_full_retries: u64,
    /// Demand reads completed.
    pub reads: u64,
    /// Total demand-read latency (CPU cycles, injection to completion).
    pub read_latency_sum: u64,
    /// Critical demand reads completed.
    pub critical_reads: u64,
    /// Total latency of critical demand reads.
    pub critical_read_latency_sum: u64,
    /// Criticality-weighted latency: Σ latency × (1 + magnitude). The
    /// scalar a criticality-aware scheduler is built to minimize.
    pub weighted_latency_sum: u128,
    /// Final per-channel controller statistics.
    pub channels: Vec<ChannelStats>,
    /// Cycle-sampled DRAM metrics, present when
    /// [`ReplayConfig::sample_epoch`] was set.
    pub series: Option<SeriesSet>,
}

impl ReplayStats {
    /// Mean demand-read latency in CPU cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Mean latency of critical demand reads in CPU cycles.
    pub fn mean_critical_read_latency(&self) -> f64 {
        if self.critical_reads == 0 {
            0.0
        } else {
            self.critical_read_latency_sum as f64 / self.critical_reads as f64
        }
    }

    /// Total row hits across channels.
    pub fn row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.row_hits).sum()
    }

    /// Total requests serviced across channels (reads + writes).
    pub fn requests_serviced(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.reads_completed + c.writes_completed)
            .sum()
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut ByteWriter) {
        for v in [
            self.injected,
            self.completed,
            self.cpu_cycles,
            self.throttled_cycles,
            self.queue_full_retries,
            self.reads,
            self.read_latency_sum,
            self.critical_reads,
            self.critical_read_latency_sum,
        ] {
            w.put_u64(v);
        }
        w.put_u128(self.weighted_latency_sum);
        w.put_u32(self.channels.len() as u32);
        for c in &self.channels {
            c.encode(w);
        }
        w.put_bool(self.series.is_some());
        if let Some(series) = &self.series {
            series.encode(w);
        }
    }

    /// Deserializes journaled replay statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or inconsistent stream.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let injected = r.get_u64()?;
        let completed = r.get_u64()?;
        let cpu_cycles = r.get_u64()?;
        let throttled_cycles = r.get_u64()?;
        let queue_full_retries = r.get_u64()?;
        let reads = r.get_u64()?;
        let read_latency_sum = r.get_u64()?;
        let critical_reads = r.get_u64()?;
        let critical_read_latency_sum = r.get_u64()?;
        let weighted_latency_sum = r.get_u128()?;
        let n_channels = r.get_u32()? as usize;
        let channels = (0..n_channels)
            .map(|_| ChannelStats::decode(r))
            .collect::<Result<Vec<_>, _>>()?;
        let series = if r.get_bool()? {
            Some(SeriesSet::decode(r)?)
        } else {
            None
        };
        Ok(ReplayStats {
            injected,
            completed,
            cpu_cycles,
            throttled_cycles,
            queue_full_retries,
            reads,
            read_latency_sum,
            critical_reads,
            critical_read_latency_sum,
            weighted_latency_sum,
            channels,
            series,
        })
    }
}

/// Drives a [`DramSystem`] from a captured trace.
pub struct TraceReplayer {
    records: Vec<TraceRecord>,
    dram: DramSystem,
    divider: ClockDivider,
    cfg: ReplayConfig,
}

impl std::fmt::Debug for TraceReplayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReplayer")
            .field("records", &self.records.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl TraceReplayer {
    /// Builds a replayer over `dram`, which the caller constructs with
    /// whatever scheduler is under study.
    ///
    /// # Errors
    ///
    /// Rejects the pairing if `dram`'s topology does not match the
    /// trace's capture fingerprint (scheduler and queue capacity are
    /// free to differ; organization, preset, and interleaving are not).
    pub fn new(trace: Trace, dram: DramSystem, cfg: ReplayConfig) -> Result<Self, TraceError> {
        let fp = &trace.fingerprint;
        let system_fp = Fingerprint::of(fp.cores as usize, fp.cpu_mhz, dram.config());
        fp.check_compatible(&system_fp)?;
        let divider = ClockDivider::new(fp.bus_mhz, fp.cpu_mhz);
        let mut records = trace.records;
        // Capture emits records in nondecreasing enqueue order already;
        // sort stably so hand-built traces behave too.
        records.sort_by_key(|r| r.enqueue_cycle);
        Ok(TraceReplayer {
            records,
            dram,
            divider,
            cfg,
        })
    }

    /// Runs the trace to completion.
    ///
    /// # Panics
    ///
    /// Panics if the replay exceeds [`ReplayConfig::max_cycles`] or
    /// the forward-progress watchdog trips (deadlock guard, mirroring
    /// the execution-driven system).
    pub fn run(self) -> ReplayStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Self::run`]: a wedged replay comes back as
    /// a typed [`SimError::Watchdog`] instead of a panic. In the
    /// snapshot, `mshr_occupancy` holds the outstanding request count
    /// and `outbox_len` the records not yet injected (the replayer has
    /// no cores or caches).
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] on a cycle-budget overrun, an injection/
    /// completion stall, or an over-aged DRAM request.
    pub fn try_run(mut self) -> Result<ReplayStats, SimError> {
        let mut stats = ReplayStats::default();
        let mut sampler = self.cfg.sample_epoch.map(|epoch| {
            let schema = Schema::build(|v| self.dram.observe(v));
            Sampler::new(schema, epoch)
        });
        let total = self.records.len();
        let mut idx = 0usize;
        let mut outstanding = 0usize;
        let mut inject_cycle: HashMap<u64, u64> = HashMap::new();
        let mut crit_of: HashMap<u64, u64> = HashMap::new();
        let mut now = 0u64;
        let wd = self.cfg.watchdog;
        let mut last_events = 0u64;
        let mut last_event_cycle = 0u64;
        let mut next_check = wd.check_interval;
        while (idx < total || outstanding > 0)
            && self.cfg.stop_at_cycle.is_none_or(|stop| now < stop)
        {
            now += 1;
            if now >= self.cfg.max_cycles {
                return Err(self.watchdog_error(
                    WatchdogReason::CycleLimit {
                        max_cycles: self.cfg.max_cycles,
                    },
                    now,
                    total - idx,
                    outstanding,
                ));
            }
            // Inject every record whose recorded cycle has arrived,
            // respecting the closed-loop throttle and queue space. This
            // happens before the DRAM tick of the same CPU cycle —
            // matching the execution-driven system's step order.
            while idx < total && self.records[idx].enqueue_cycle <= now {
                if let Some(cap) = self.cfg.max_outstanding {
                    if outstanding >= cap {
                        stats.throttled_cycles += 1;
                        break;
                    }
                }
                let rec = self.records[idx];
                match self.dram.enqueue(rec.to_request()) {
                    Ok(()) => {
                        idx += 1;
                        outstanding += 1;
                        stats.injected += 1;
                        inject_cycle.insert(rec.id, now);
                        crit_of.insert(rec.id, rec.crit);
                    }
                    Err(_) => {
                        // Transaction queue full: retry on a later cycle.
                        stats.queue_full_retries += 1;
                        break;
                    }
                }
            }
            if self.divider.tick() {
                for done in self.dram.tick() {
                    outstanding -= 1;
                    stats.completed += 1;
                    let start = inject_cycle.remove(&done.req.id).unwrap_or(now);
                    let crit = crit_of.remove(&done.req.id).unwrap_or(0);
                    let lat = now - start;
                    if done.req.kind.is_demand_read() {
                        stats.reads += 1;
                        stats.read_latency_sum += lat;
                        stats.weighted_latency_sum += u128::from(lat) * u128::from(1 + crit);
                        if crit > 0 {
                            stats.critical_reads += 1;
                            stats.critical_read_latency_sum += lat;
                        }
                    }
                }
            }
            if let Some(s) = &mut sampler {
                if s.due(now) {
                    s.sample(now, |v| self.dram.observe(v));
                }
            }
            if now >= next_check {
                next_check = now.saturating_add(wd.check_interval);
                if wd.no_commit_cycles > 0 {
                    let events = stats.injected + stats.completed;
                    if events > last_events {
                        last_events = events;
                        last_event_cycle = now;
                    } else if now - last_event_cycle >= wd.no_commit_cycles {
                        let idle_cycles = now - last_event_cycle;
                        return Err(self.watchdog_error(
                            WatchdogReason::NoCommit { idle_cycles },
                            now,
                            total - idx,
                            outstanding,
                        ));
                    }
                }
                if wd.max_request_age > 0 {
                    if let Some(age) = self.dram.oldest_queued_age() {
                        if age > wd.max_request_age {
                            return Err(self.watchdog_error(
                                WatchdogReason::StarvedRequest {
                                    age,
                                    limit: wd.max_request_age,
                                },
                                now,
                                total - idx,
                                outstanding,
                            ));
                        }
                    }
                }
            }
        }
        stats.cpu_cycles = now;
        stats.channels = self.dram.channel_stats().into_iter().cloned().collect();
        stats.series = sampler.map(|mut s| {
            if s.last_sampled() != Some(now) {
                s.sample(now, |v| self.dram.observe(v));
            }
            s.into_series()
        });
        Ok(stats)
    }

    /// Builds the diagnostic snapshot for a watchdog trip.
    fn watchdog_error(
        &self,
        reason: WatchdogReason,
        now: u64,
        pending: usize,
        outstanding: usize,
    ) -> SimError {
        SimError::Watchdog(Box::new(WatchdogSnapshot {
            reason,
            cycle: now,
            committed: Vec::new(),
            rob_head_pc: Vec::new(),
            mshr_occupancy: outstanding,
            outbox_len: pending,
            bank_queues: self.dram.bank_queue_snapshot(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critmem_common::AccessKind;
    use critmem_dram::Fcfs;

    fn synthetic_trace(n: u64) -> Trace {
        let cfg = DramConfig::paper_baseline();
        let fingerprint = Fingerprint::of(8, 4_270, &cfg);
        let records = (0..n)
            .map(|i| TraceRecord {
                enqueue_cycle: 10 + i * 20,
                issued_at: i * 20,
                id: i,
                addr: (i % 64) * 1024 + (i / 64) * 256 * 1024,
                crit: if i % 4 == 0 { 100 + i } else { 0 },
                core: (i % 8) as u8,
                kind: if i % 5 == 4 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            })
            .collect();
        Trace {
            fingerprint,
            source: "synthetic".into(),
            records,
        }
    }

    fn dram_for(trace: &Trace) -> DramSystem {
        let cfg = trace.fingerprint.dram_config().unwrap();
        DramSystem::new(cfg, |_| Box::new(Fcfs::new()))
    }

    #[test]
    fn replay_services_every_record() {
        let trace = synthetic_trace(200);
        let dram = dram_for(&trace);
        let stats = TraceReplayer::new(trace, dram, ReplayConfig::default())
            .unwrap()
            .run();
        assert_eq!(stats.injected, 200);
        assert_eq!(stats.completed, 200);
        assert_eq!(stats.requests_serviced(), 200);
        assert!(stats.reads > 0 && stats.mean_read_latency() > 0.0);
        assert!(stats.critical_reads > 0);
        assert!(stats.weighted_latency_sum > u128::from(stats.read_latency_sum));
    }

    #[test]
    fn throttle_delays_but_conserves() {
        let trace = synthetic_trace(200);
        let open = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        let throttled = TraceReplayer::new(
            trace.clone(),
            dram_for(&trace),
            ReplayConfig {
                max_outstanding: Some(2),
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .run();
        assert_eq!(throttled.completed, 200);
        assert!(throttled.throttled_cycles > 0, "cap of 2 must bite");
        assert!(throttled.cpu_cycles >= open.cpu_cycles);
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let trace = synthetic_trace(10);
        let mut cfg = trace.fingerprint.dram_config().unwrap();
        cfg.org.channels = 2;
        let dram = DramSystem::new(cfg, |_| Box::new(Fcfs::new()));
        let err = TraceReplayer::new(trace, dram, ReplayConfig::default()).unwrap_err();
        assert!(matches!(err, TraceError::FingerprintMismatch(_)), "{err}");
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = synthetic_trace(150);
        let a = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        let b = TraceReplayer::new(trace.clone(), dram_for(&trace), ReplayConfig::default())
            .unwrap()
            .run();
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
        assert_eq!(a.read_latency_sum, b.read_latency_sum);
        assert_eq!(a.row_hits(), b.row_hits());
    }

    #[test]
    fn fingerprint_reconstructs_dram_config() {
        let base = DramConfig::paper_baseline();
        let fp = Fingerprint::of(8, 4_270, &base);
        let cfg = fp.dram_config().unwrap();
        assert_eq!(cfg.org, base.org);
        assert_eq!(cfg.preset.name, base.preset.name);
        assert_eq!(cfg.interleaving, base.interleaving);
    }
}
