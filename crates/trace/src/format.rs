//! The on-disk trace format: a compact, versioned, self-describing
//! binary encoding of LLC-miss memory requests.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:
//!   magic            4  b"CMTR"
//!   version          2  format version (currently 1)
//!   -- capture fingerprint --
//!   cores            2
//!   cpu_mhz          8
//!   bus_mhz          8
//!   channels         1
//!   ranks_per_chan   1
//!   banks_per_rank   1
//!   interleaving     1  0 = page, 1 = cache-line
//!   row_bytes        8
//!   line_bytes       8
//!   preset_name      2 + n  length-prefixed UTF-8
//!   -- provenance --
//!   source           2 + n  length-prefixed UTF-8 (workload label)
//!   record_count     8  u64::MAX while streaming; patched on finish
//! record (42 bytes, repeated record_count times):
//!   enqueue_cycle    8  CPU cycle of successful DRAM enqueue
//!   issued_at        8  CPU cycle the miss left the L2 (MSHR allocation)
//!   id               8  request id
//!   addr             8  physical line address
//!   crit             8  criticality magnitude (0 = non-critical)
//!   core             1
//!   kind             1  0 = read, 1 = write, 2 = prefetch
//! chunk checksum (version 2):
//!   crc32            4  after every 256 records, and after the final
//!                       partial chunk when the stream is finished
//! ```
//!
//! The fingerprint pins the *topology* of the capturing system — core
//! count, clock ratio, DRAM organization, device preset, and address
//! interleaving — everything that determines where and when requests
//! arrive. It deliberately excludes the scheduler and queue capacity,
//! which are exactly the knobs a replay-based scheduler study varies.
//!
//! Version 2 interleaves a CRC-32 over the raw bytes of every
//! 256-record chunk, so a flipped bit in a stored trace surfaces as
//! [`TraceError::Corrupt`] instead of silently skewing a scheduler
//! study. Truncation of a *finished* stream (declared count not
//! reached) is likewise reported as `Corrupt`; a stream abandoned
//! without [`TraceWriter::finish`] still reads to EOF, with only its
//! final partial chunk unverified.

use critmem_common::crc32::Crc32;
use critmem_common::{AccessKind, CoreId, CpuCycle, Criticality, MemRequest, PhysAddr, ReqId};
use critmem_dram::{DramConfig, Interleaving};
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Format magic: "CritMem TRace".
pub const MAGIC: [u8; 4] = *b"CMTR";
/// Current format version.
pub const VERSION: u16 = 2;
/// `record_count` placeholder while a stream is still being written.
const COUNT_STREAMING: u64 = u64::MAX;
/// Encoded size of one record in bytes.
pub const RECORD_BYTES: usize = 42;
/// Records covered by each interleaved CRC-32 (version 2).
pub const CHUNK_RECORDS: usize = 256;

/// Errors raised by the trace reader/writer.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// The stream's format version is not supported.
    UnsupportedVersion(u16),
    /// Structurally invalid data (truncated record, bad enum tag, ...).
    Corrupt(String),
    /// The trace was captured on a different topology; the message
    /// lists the mismatched fields.
    FingerprintMismatch(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => f.write_str("not a critmem trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (reader supports {VERSION})"
                )
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::FingerprintMismatch(msg) => {
                write!(f, "trace/system fingerprint mismatch: {msg}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Topology fingerprint of the capturing system.
///
/// Replay rejects traces whose fingerprint does not match the replaying
/// DRAM system (see [`Fingerprint::check_compatible`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Core count of the capturing system.
    pub cores: u16,
    /// CPU clock in MHz (fixes the CPU:DRAM clock ratio).
    pub cpu_mhz: u64,
    /// DRAM bus clock in MHz.
    pub bus_mhz: u64,
    /// Channel count.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks_per_channel: u8,
    /// Banks per rank.
    pub banks_per_rank: u8,
    /// Address interleaving policy.
    pub interleaving: Interleaving,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Device preset name (e.g. "DDR3-2133").
    pub preset: String,
}

impl Fingerprint {
    /// Fingerprint of a system with `cores` cores at `cpu_mhz` over the
    /// given DRAM configuration.
    pub fn of(cores: usize, cpu_mhz: u64, dram: &DramConfig) -> Self {
        Fingerprint {
            cores: cores as u16,
            cpu_mhz,
            bus_mhz: dram.preset.bus_mhz,
            channels: dram.org.channels,
            ranks_per_channel: dram.org.ranks_per_channel,
            banks_per_rank: dram.org.banks_per_rank,
            interleaving: dram.interleaving,
            row_bytes: dram.org.row_bytes,
            line_bytes: dram.org.line_bytes,
            preset: dram.preset.name.to_string(),
        }
    }

    /// Checks that `other` describes the same topology.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::FingerprintMismatch`] naming every field
    /// that differs.
    pub fn check_compatible(&self, other: &Fingerprint) -> Result<(), TraceError> {
        let mut diffs = Vec::new();
        macro_rules! chk {
            ($field:ident) => {
                if self.$field != other.$field {
                    diffs.push(format!(
                        "{}: trace {:?} vs system {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        chk!(cores);
        chk!(cpu_mhz);
        chk!(bus_mhz);
        chk!(channels);
        chk!(ranks_per_channel);
        chk!(banks_per_rank);
        chk!(interleaving);
        chk!(row_bytes);
        chk!(line_bytes);
        chk!(preset);
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(TraceError::FingerprintMismatch(diffs.join("; ")))
        }
    }

    pub(crate) fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.cores.to_le_bytes())?;
        w.write_all(&self.cpu_mhz.to_le_bytes())?;
        w.write_all(&self.bus_mhz.to_le_bytes())?;
        w.write_all(&[
            self.channels,
            self.ranks_per_channel,
            self.banks_per_rank,
            interleaving_tag(self.interleaving),
        ])?;
        w.write_all(&self.row_bytes.to_le_bytes())?;
        w.write_all(&self.line_bytes.to_le_bytes())?;
        write_string(w, &self.preset)
    }

    pub(crate) fn read_from<R: Read>(r: &mut R) -> Result<Self, TraceError> {
        let cores = u16::from_le_bytes(read_array(r)?);
        let cpu_mhz = u64::from_le_bytes(read_array(r)?);
        let bus_mhz = u64::from_le_bytes(read_array(r)?);
        let [channels, ranks_per_channel, banks_per_rank, inter]: [u8; 4] = read_array(r)?;
        let interleaving = interleaving_from_tag(inter)?;
        let row_bytes = u64::from_le_bytes(read_array(r)?);
        let line_bytes = u64::from_le_bytes(read_array(r)?);
        let preset = read_string(r)?;
        Ok(Fingerprint {
            cores,
            cpu_mhz,
            bus_mhz,
            channels,
            ranks_per_channel,
            banks_per_rank,
            interleaving,
            row_bytes,
            line_bytes,
            preset,
        })
    }

    /// Encoded byte length of this fingerprint.
    fn encoded_len(&self) -> u64 {
        (2 + 8 + 8 + 4 + 8 + 8 + 2 + self.preset.len()) as u64
    }
}

fn interleaving_tag(i: Interleaving) -> u8 {
    match i {
        Interleaving::Page => 0,
        Interleaving::CacheLine => 1,
    }
}

fn interleaving_from_tag(t: u8) -> Result<Interleaving, TraceError> {
    match t {
        0 => Ok(Interleaving::Page),
        1 => Ok(Interleaving::CacheLine),
        n => Err(TraceError::Corrupt(format!("unknown interleaving tag {n}"))),
    }
}

fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).expect("trace strings are short");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_string<R: Read>(r: &mut R) -> Result<String, TraceError> {
    let len = u16::from_le_bytes(read_array(r)?) as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| TraceError::Corrupt("non-UTF-8 string".into()))
}

fn read_array<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// One captured LLC-miss request.
///
/// `enqueue_cycle - issued_at` is the time the miss spent in the MSHRs
/// and the hierarchy's outbox before a transaction-queue slot was free —
/// the processor-side queuing (and MSHR-merge) delay, preserved so
/// closed-loop replay throttles can be calibrated against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// CPU cycle at which the request was accepted into its channel's
    /// transaction queue.
    pub enqueue_cycle: CpuCycle,
    /// CPU cycle at which the miss left the L2 (MSHR allocation).
    pub issued_at: CpuCycle,
    /// Request id (unique within the capturing run).
    pub id: ReqId,
    /// Physical line address.
    pub addr: PhysAddr,
    /// Criticality magnitude at enqueue (0 = non-critical).
    pub crit: u64,
    /// Originating core.
    pub core: u8,
    /// Access kind.
    pub kind: AccessKind,
}

impl TraceRecord {
    /// Captures `req` as accepted at CPU cycle `now`.
    pub fn capture(now: CpuCycle, req: &MemRequest) -> Self {
        TraceRecord {
            enqueue_cycle: now,
            issued_at: req.issued_at,
            id: req.id,
            addr: req.addr,
            crit: req.crit.magnitude(),
            core: req.core.0,
            kind: req.kind,
        }
    }

    /// Reconstructs the request for injection into a DRAM system.
    pub fn to_request(self) -> MemRequest {
        MemRequest::new(self.id, self.addr, self.kind, CoreId(self.core))
            .with_criticality(Criticality::ranked(self.crit))
            .with_issue_cycle(self.issued_at)
    }

    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&self.enqueue_cycle.to_le_bytes());
        buf[8..16].copy_from_slice(&self.issued_at.to_le_bytes());
        buf[16..24].copy_from_slice(&self.id.to_le_bytes());
        buf[24..32].copy_from_slice(&self.addr.to_le_bytes());
        buf[32..40].copy_from_slice(&self.crit.to_le_bytes());
        buf[40] = self.core;
        buf[41] = match self.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Prefetch => 2,
        };
        w.write_all(&buf)
    }

    pub(crate) fn read_from<R: Read>(r: &mut R) -> Result<Self, TraceError> {
        let buf: [u8; RECORD_BYTES] = read_array(r)?;
        let word = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
        let kind = match buf[41] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::Prefetch,
            n => return Err(TraceError::Corrupt(format!("unknown access kind tag {n}"))),
        };
        Ok(TraceRecord {
            enqueue_cycle: word(0),
            issued_at: word(8),
            id: word(16),
            addr: word(24),
            crit: word(32),
            core: buf[40],
            kind,
        })
    }
}

/// Streaming trace writer.
///
/// Writes the header immediately with a placeholder record count, then
/// records one at a time; [`TraceWriter::finish`] seeks back and patches
/// the count. A stream abandoned without `finish` is still readable —
/// the reader treats the placeholder as "read until EOF".
pub struct TraceWriter<W: Write + Seek> {
    pub(crate) w: W,
    count: u64,
    count_offset: u64,
    chunk_crc: Crc32,
    in_chunk: usize,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn new(mut w: W, fingerprint: &Fingerprint, source: &str) -> Result<Self, TraceError> {
        let start = w.stream_position()?;
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        fingerprint.write_to(&mut w)?;
        write_string(&mut w, source)?;
        let count_offset = start + 4 + 2 + fingerprint.encoded_len() + 2 + source.len() as u64;
        debug_assert_eq!(w.stream_position()?, count_offset);
        w.write_all(&COUNT_STREAMING.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            count: 0,
            count_offset,
            chunk_crc: Crc32::new(),
            in_chunk: 0,
        })
    }

    /// Appends one record, emitting the chunk CRC when the 256th record
    /// of a chunk lands.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        let mut buf = [0u8; RECORD_BYTES];
        rec.write_to(&mut &mut buf[..])?;
        self.w.write_all(&buf)?;
        self.chunk_crc.update(&buf);
        self.count += 1;
        self.in_chunk += 1;
        if self.in_chunk == CHUNK_RECORDS {
            self.flush_chunk_crc()?;
        }
        Ok(())
    }

    fn flush_chunk_crc(&mut self) -> Result<(), TraceError> {
        self.w.write_all(&self.chunk_crc.finish().to_le_bytes())?;
        self.chunk_crc = Crc32::new();
        self.in_chunk = 0;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Seals the final partial chunk's CRC, patches the record count
    /// into the header, and returns the inner writer (positioned at end
    /// of stream).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.in_chunk > 0 {
            self.flush_chunk_crc()?;
        }
        self.w.seek(SeekFrom::Start(self.count_offset))?;
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// A parsed CMTR header: fingerprint, provenance, and declared record
/// count (`None` when the stream was abandoned without
/// [`TraceWriter::finish`]).
pub(crate) struct Header {
    pub(crate) fingerprint: Fingerprint,
    pub(crate) source: String,
    pub(crate) declared: Option<u64>,
}

/// Parses the magic, version, fingerprint, source label, and record
/// count off the front of a CMTR stream, leaving `r` positioned at the
/// first record. Shared by the record-at-a-time [`TraceReader`] and the
/// chunk-at-a-time [`crate::stream::TraceStream`].
pub(crate) fn read_header<R: Read>(r: &mut R) -> Result<Header, TraceError> {
    let magic: [u8; 4] = read_array(r)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = u16::from_le_bytes(read_array(r)?);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let fingerprint = Fingerprint::read_from(r)?;
    let source = read_string(r)?;
    let count = u64::from_le_bytes(read_array(r)?);
    Ok(Header {
        fingerprint,
        source,
        declared: (count != COUNT_STREAMING).then_some(count),
    })
}

/// Streaming trace reader.
///
/// Verifies the interleaved chunk CRCs as it goes: a flipped bit in a
/// record surfaces as [`TraceError::Corrupt`] no later than the end of
/// its 256-record chunk.
pub struct TraceReader<R: Read> {
    r: R,
    fingerprint: Fingerprint,
    source: String,
    remaining: Option<u64>,
    chunk_crc: Crc32,
    in_chunk: usize,
    tail_checked: bool,
}

/// Re-badges an EOF inside a *finished* stream: the header promised
/// more bytes, so this is data loss, not a normal end of stream.
fn eof_is_corrupt(e: TraceError, what: &str) -> TraceError {
    match e {
        TraceError::Io(ref io) if io.kind() == io::ErrorKind::UnexpectedEof => {
            TraceError::Corrupt(format!("stream truncated mid-{what}"))
        }
        other => other,
    }
}

impl<R: Read> TraceReader<R> {
    /// Parses the header.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, unsupported version, or I/O errors.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let header = read_header(&mut r)?;
        Ok(TraceReader {
            r,
            fingerprint: header.fingerprint,
            source: header.source,
            remaining: header.declared,
            chunk_crc: Crc32::new(),
            in_chunk: 0,
            tail_checked: false,
        })
    }

    /// The capturing system's fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The workload label recorded at capture time.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Declared record count, if the stream was finished cleanly.
    pub fn declared_count(&self) -> Option<u64> {
        self.remaining
    }

    /// Checks a chunk CRC against the bytes folded in so far. In a
    /// finished stream a missing or wrong CRC is corruption; in an
    /// abandoned stream a missing CRC is just the torn end of the data.
    fn verify_chunk_crc(&mut self) -> Result<bool, TraceError> {
        let stored = match read_array::<_, 4>(&mut self.r) {
            Ok(b) => u32::from_le_bytes(b),
            Err(e) if self.remaining.is_some() => return Err(eof_is_corrupt(e, "chunk checksum")),
            Err(TraceError::Io(io)) if io.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok(false)
            }
            Err(e) => return Err(e),
        };
        let computed = self.chunk_crc.finish();
        if stored != computed {
            return Err(TraceError::Corrupt(format!(
                "chunk checksum mismatch (stored {stored:#010X}, computed {computed:#010X})"
            )));
        }
        self.chunk_crc = Crc32::new();
        self.in_chunk = 0;
        Ok(true)
    }

    /// Reads the next record; `Ok(None)` at end of trace.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on a truncated finished stream or a
    /// chunk-checksum mismatch; I/O errors otherwise.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.in_chunk == CHUNK_RECORDS && !self.verify_chunk_crc()? {
            return Ok(None);
        }
        let buf: [u8; RECORD_BYTES] = match self.remaining {
            Some(0) => {
                // Finished stream fully consumed: the final partial
                // chunk's CRC is still pending.
                if self.in_chunk > 0 && !self.tail_checked {
                    self.tail_checked = true;
                    self.verify_chunk_crc()?;
                }
                return Ok(None);
            }
            Some(ref mut n) => {
                *n -= 1;
                read_array(&mut self.r).map_err(|e| eof_is_corrupt(e, "record"))?
            }
            None => {
                // Unfinished stream: probe for EOF before committing to
                // a full record read.
                let mut first = [0u8; 1];
                match self.r.read(&mut first)? {
                    0 => return Ok(None),
                    _ => {
                        let mut rest = [0u8; RECORD_BYTES - 1];
                        self.r.read_exact(&mut rest)?;
                        let mut buf = [0u8; RECORD_BYTES];
                        buf[0] = first[0];
                        buf[1..].copy_from_slice(&rest);
                        buf
                    }
                }
            }
        };
        self.chunk_crc.update(&buf);
        self.in_chunk += 1;
        TraceRecord::read_from(&mut &buf[..]).map(Some)
    }

    /// Reads all remaining records.
    ///
    /// # Errors
    ///
    /// Fails on truncated or corrupt records.
    pub fn read_all(&mut self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// A fully materialized trace: fingerprint + provenance + records.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Topology of the capturing system.
    pub fingerprint: Fingerprint,
    /// Workload label (e.g. the app name).
    pub source: String,
    /// Captured requests, in enqueue order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Serializes the trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write + Seek>(&self, w: W) -> Result<W, TraceError> {
        let mut tw = TraceWriter::new(w, &self.fingerprint, &self.source)?;
        for rec in &self.records {
            tw.append(rec)?;
        }
        tw.finish()
    }

    /// Deserializes a trace.
    ///
    /// # Errors
    ///
    /// Fails on malformed streams.
    pub fn read_from<R: Read>(r: R) -> Result<Self, TraceError> {
        let mut tr = TraceReader::new(r)?;
        let records = tr.read_all()?;
        Ok(Trace {
            fingerprint: tr.fingerprint.clone(),
            source: tr.source.clone(),
            records,
        })
    }

    /// Serializes to an in-memory byte buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (none in practice for `Vec` targets).
    pub fn to_bytes(&self) -> Result<Vec<u8>, TraceError> {
        Ok(self.write_to(io::Cursor::new(Vec::new()))?.into_inner())
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TraceError> {
        let f = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(f))?;
        Ok(())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load(path: &std::path::Path) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_fingerprint() -> Fingerprint {
        Fingerprint::of(8, 4_270, &DramConfig::paper_baseline())
    }

    fn sample_records() -> Vec<TraceRecord> {
        (0..100u64)
            .map(|i| TraceRecord {
                enqueue_cycle: i * 7,
                issued_at: i * 7 - (i % 5),
                id: i,
                addr: i * 64,
                crit: if i % 3 == 0 { i * 11 } else { 0 },
                core: (i % 8) as u8,
                kind: match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Prefetch,
                },
            })
            .collect()
    }

    #[test]
    fn in_memory_round_trip_is_lossless() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "swim".into(),
            records: sample_records(),
        };
        let bytes = trace.to_bytes().unwrap();
        let back = Trace::read_from(Cursor::new(&bytes)).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn encoding_is_compact() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "swim".into(),
            records: sample_records(),
        };
        let bytes = trace.to_bytes().unwrap();
        // Fixed 42 B per record plus a small header.
        assert!(bytes.len() < 100 * RECORD_BYTES + 128);
    }

    #[test]
    fn streaming_reader_matches_bulk_reader() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "mg".into(),
            records: sample_records(),
        };
        let bytes = trace.to_bytes().unwrap();
        let mut tr = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(tr.declared_count(), Some(100));
        assert_eq!(tr.source(), "mg");
        let mut streamed = Vec::new();
        while let Some(rec) = tr.next_record().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, trace.records);
    }

    #[test]
    fn unfinished_stream_reads_to_eof() {
        let fp = sample_fingerprint();
        let mut tw = TraceWriter::new(Cursor::new(Vec::new()), &fp, "art").unwrap();
        let recs = sample_records();
        for r in &recs[..7] {
            tw.append(r).unwrap();
        }
        // Abandon without finish(): count stays at the placeholder.
        let bytes = tw.w.into_inner();
        let mut tr = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(tr.declared_count(), None);
        assert_eq!(tr.read_all().unwrap(), recs[..7].to_vec());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(Cursor::new(b"NOPE....".to_vec())).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "x".into(),
            records: vec![],
        };
        let mut bytes = trace.to_bytes().unwrap();
        bytes[4] = 0xFF; // bump version field
        let err = Trace::read_from(Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(_)));
    }

    #[test]
    fn truncated_record_is_corrupt() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "x".into(),
            records: sample_records(),
        };
        let bytes = trace.to_bytes().unwrap();
        let err = Trace::read_from(Cursor::new(&bytes[..bytes.len() - 5])).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn truncated_chunk_checksum_is_corrupt() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "x".into(),
            records: sample_records(),
        };
        let bytes = trace.to_bytes().unwrap();
        // Chop into the trailing 4-byte chunk CRC itself.
        let err = Trace::read_from(Cursor::new(&bytes[..bytes.len() - 2])).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("chunk checksum"), "{err}");
    }

    #[test]
    fn bit_flip_in_a_record_is_detected() {
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "x".into(),
            records: sample_records(),
        };
        let clean = trace.to_bytes().unwrap();
        // Flip one bit in every record byte position of the last record
        // (covers both payload bytes and the enum-tag byte).
        let rec_start = clean.len() - 4 - RECORD_BYTES;
        for offset in rec_start..rec_start + RECORD_BYTES {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x04;
            let err = Trace::read_from(Cursor::new(&bytes)).unwrap_err();
            assert!(
                matches!(err, TraceError::Corrupt(_)),
                "offset {offset}: {err:?}"
            );
        }
    }

    #[test]
    fn multi_chunk_traces_round_trip_and_verify() {
        let records: Vec<TraceRecord> = (0..(2 * CHUNK_RECORDS as u64 + 37))
            .map(|i| TraceRecord {
                enqueue_cycle: i,
                issued_at: i,
                id: i,
                addr: i * 64,
                crit: i % 9,
                core: (i % 8) as u8,
                kind: AccessKind::Read,
            })
            .collect();
        let trace = Trace {
            fingerprint: sample_fingerprint(),
            source: "big".into(),
            records,
        };
        let bytes = trace.to_bytes().unwrap();
        // Three CRCs: two full chunks + the partial tail.
        let expected = trace.records.len() * RECORD_BYTES + 3 * 4;
        assert!(bytes.len() > expected && bytes.len() < expected + 128);
        let back = Trace::read_from(Cursor::new(&bytes)).unwrap();
        assert_eq!(back, trace);
        // A flip inside the *first* chunk is caught at that chunk's
        // boundary, long before the end of the stream.
        let mut corrupt = bytes.clone();
        let flip_at = corrupt.len() - 4 - trace.records.len() * RECORD_BYTES - 2 * 4 + 10;
        corrupt[flip_at] ^= 0x80;
        let err = Trace::read_from(Cursor::new(&corrupt)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn fingerprint_mismatch_names_fields() {
        let a = sample_fingerprint();
        let mut b = a.clone();
        b.channels = 2;
        b.cpu_mhz = 3_000;
        let err = a.check_compatible(&b).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("channels"), "{msg}");
        assert!(msg.contains("cpu_mhz"), "{msg}");
        a.check_compatible(&a.clone()).unwrap();
    }

    #[test]
    fn record_capture_round_trips_through_request() {
        let req = MemRequest::new(9, 0x4_0000, AccessKind::Read, CoreId(3))
            .with_criticality(Criticality::ranked(777))
            .with_issue_cycle(123);
        let rec = TraceRecord::capture(150, &req);
        assert_eq!(rec.enqueue_cycle, 150);
        assert_eq!(rec.issued_at, 123);
        let back = rec.to_request();
        assert_eq!(back, req);
    }
}
