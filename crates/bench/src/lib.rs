//! Shared scaffolding for the figure-regeneration benches.
//!
//! Each bench target regenerates one or more of the paper's figures or
//! tables at bench scale, *prints* the regenerated rows/series (so
//! `cargo bench` output contains the reproduction), and then times the
//! underlying harness with Criterion.

use critmem::experiments::{Runner, Scale};

/// The scale used inside benches: small enough that Criterion's
/// repeated sampling stays fast, large enough that predictors warm up.
pub fn bench_scale() -> Scale {
    Scale {
        instructions: 2_500,
        apps: vec!["art", "mg", "swim"],
        sweep_apps: vec!["mg"],
        bundles: vec!["AELV", "RFGI"],
    }
}

/// A fresh runner at bench scale.
pub fn bench_runner() -> Runner {
    Runner::new(bench_scale())
}
