//! Shared scaffolding for the figure-regeneration benches, plus a
//! self-contained micro-benchmark harness.
//!
//! The workspace builds in hermetic (offline) environments, so the
//! benches cannot depend on Criterion. This crate provides a small
//! API-compatible subset — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by `std::time::Instant`. Each
//! bench function is warmed up, then sampled repeatedly; the harness
//! prints the median and spread per sample.
//!
//! Each bench target regenerates one or more of the paper's figures or
//! tables at bench scale, *prints* the regenerated rows/series (so
//! `cargo bench` output contains the reproduction), and then times the
//! underlying harness.

use critmem::experiments::{Runner, Scale};
use std::time::{Duration, Instant};

/// The scale used inside benches: small enough that repeated sampling
/// stays fast, large enough that predictors warm up.
pub fn bench_scale() -> Scale {
    Scale {
        instructions: 2_500,
        apps: vec!["art", "mg", "swim"],
        sweep_apps: vec!["mg"],
        bundles: vec!["AELV", "RFGI"],
    }
}

/// A fresh runner at bench scale.
pub fn bench_runner() -> Runner {
    Runner::new(bench_scale())
}

/// Identity function that defeats constant propagation, so benched
/// expressions are not optimized away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to each bench closure.
pub struct Bencher {
    /// Measured wall-clock for the whole batch, filled by [`Bencher::iter`].
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over an adaptively chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut iters = 1u64;
        let total = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                break elapsed;
            }
            iters *= 4;
        };
        self.sample = total;
        self.iters = iters;
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.crit.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.crit.run_one(&full, f);
        self
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Minimal stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            crit: self,
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        // One warm-up pass, then the timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                sample: Duration::ZERO,
                iters: 1,
            };
            f(&mut b);
            if i > 0 {
                per_iter.push(b.sample.as_secs_f64() / b.iters.max(1) as f64);
            }
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter.first().copied().unwrap_or(0.0);
        let hi = per_iter.last().copied().unwrap_or(0.0);
        println!(
            "bench {id:<44} median {}  [{} .. {}]  ({} samples)",
            fmt_seconds(median),
            fmt_seconds(lo),
            fmt_seconds(hi),
            per_iter.len()
        );
    }
}

/// Human-friendly duration formatting (ns/µs/ms/s).
fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:8.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.3} s ")
    }
}

/// Declares a bench group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1u64 + 1));
            calls += 1;
        });
        g.finish();
        assert!(calls >= 4, "warm-up + 3 samples");
    }

    #[test]
    fn duration_formats_scale() {
        assert!(fmt_seconds(2e-9).contains("ns"));
        assert!(fmt_seconds(2e-6).contains("µs"));
        assert!(fmt_seconds(2e-3).contains("ms"));
        assert!(fmt_seconds(2.0).contains('s'));
    }
}
