//! Microbenchmarks of the simulator's hot kernels: the DRAM channel
//! tick, scheduler arbitration, CBP lookup, cache probing, and the
//! whole-system cycle. These bound the cost of the "lean controller"
//! argument: CASRAS-Crit arbitration should cost no more than plain
//! FR-FCFS arbitration (it is the same comparator, a few bits wider).

use critmem::{AgentMix, PredictorKind, System, SystemConfig};
use critmem_bench::{black_box, criterion_group, criterion_main, Criterion};
use critmem_common::{AccessKind, ChannelId, CoreId, Criticality, MemRequest};
use critmem_dram::{AddressMapping, ChannelController, DramConfig, Interleaving};
use critmem_predict::{CbpMetric, CommitBlockPredictor, TableSize};
use critmem_sched::{Arrangement, CritFrFcfs, FrFcfs, SchedulerKind};

fn loaded_controller(sched: Box<dyn critmem_dram::CommandScheduler>) -> ChannelController {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, sched);
    // Fill the queue with a mix of rows/banks/criticalities (channel 0
    // rows are 4 KB apart under page interleaving).
    for i in 0..48u64 {
        let addr = (i % 24) * 4 * 1024 + (i % 16) * 64;
        let req = MemRequest::new(i, addr, AccessKind::Read, CoreId((i % 8) as u8))
            .with_criticality(if i % 3 == 0 {
                Criticality::ranked(i * 10)
            } else {
                Criticality::non_critical()
            });
        let _ = ctl.enqueue(req, map.locate(addr));
    }
    ctl
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_kernels");
    g.bench_function("channel_tick_frfcfs", |b| {
        let mut ctl = loaded_controller(Box::new(FrFcfs::new()));
        b.iter(|| black_box(ctl.tick()));
    });
    g.bench_function("channel_tick_casras_crit", |b| {
        let mut ctl = loaded_controller(Box::new(CritFrFcfs::new(Arrangement::CasRasFirst)));
        b.iter(|| black_box(ctl.tick()));
    });
    g.finish();
}

fn bench_cbp(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbp_kernels");
    let mut cbp = CommitBlockPredictor::new(CbpMetric::MaxStallTime, TableSize::Entries(64));
    for pc in 0..200u64 {
        cbp.record_block(pc * 4, pc * 13 % 5_000);
    }
    g.bench_function("predict_64_entry", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 4) % 1_024;
            black_box(cbp.predict(pc))
        });
    });
    let mut unlimited = CommitBlockPredictor::new(CbpMetric::MaxStallTime, TableSize::Unlimited);
    for pc in 0..200u64 {
        unlimited.record_block(pc * 4, pc * 13 % 5_000);
    }
    g.bench_function("predict_unlimited", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 4) % 1_024;
            black_box(unlimited.predict(pc))
        });
    });
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("cpu_cycle_8core", |b| {
        let cfg = SystemConfig::paper_baseline(u64::MAX / 4)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let mut sys = System::new(cfg, &AgentMix::Parallel("mg"));
        // Warm up past cold caches.
        for _ in 0..20_000 {
            sys.step();
        }
        b.iter(|| sys.step());
    });
    g.finish();
}

criterion_group!(benches, bench_dram, bench_cbp, bench_system);
criterion_main!(benches);
