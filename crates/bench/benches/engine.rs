//! Benchmarks for the experiment engine and the controller hot path —
//! the two halves of the "parallel engine + hot-path overhaul" work.
//!
//! Beyond the usual timing printout, this bench writes
//! `BENCH_engine.json` at the workspace root: the measured after
//! numbers next to the recorded pre-overhaul baseline, so the speedup
//! claims in DESIGN.md are regenerable with `cargo bench --bench
//! engine`.

use critmem::config::PredictorKind;
use critmem::experiments::{fig10, fig11, stream_replay, synth_replay, Runner, Scale};
use critmem::pool::default_jobs;
use critmem::{AgentMix, RunStats, Session, SystemConfig};
use critmem_bench::{black_box, Criterion};
use critmem_common::codec::ByteWriter;
use critmem_common::{AccessKind, ChannelId, CoreId, Criticality, MemRequest, ShardPool};
use critmem_dram::{AddressMapping, ChannelController, DramConfig, DramSystem, Interleaving};
use critmem_predict::CbpMetric;
use critmem_sched::{FrFcfs, SchedulerKind};
use critmem_trace::{CoreProfile, Fingerprint, ReplayConfig, TrafficProfile, CHUNK_BYTES};
use std::time::Instant;

/// Pre-overhaul numbers, measured on the same harness (loaded/idle
/// steady-state kernels below; serial quick-scale fig10+fig11) at
/// commit 569405c, before the controller rework. Kept as the fixed
/// "before" column of `BENCH_engine.json`.
const BEFORE_LOADED_MTICKS: f64 = 1.35;
const BEFORE_IDLE_MTICKS: f64 = 18.6;
const BEFORE_COMPARE_SECONDS: f64 = 5.47;

fn loaded_controller() -> (ChannelController, AddressMapping) {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(FrFcfs::new()));
    for i in 0..48u64 {
        enqueue(&mut ctl, &map, i);
    }
    (ctl, map)
}

fn enqueue(ctl: &mut ChannelController, map: &AddressMapping, id: u64) {
    let addr = (id % 24) * 4 * 1024 + (id % 16) * 64;
    let req = MemRequest::new(id, addr, AccessKind::Read, CoreId((id % 8) as u8)).with_criticality(
        if id.is_multiple_of(3) {
            Criticality::ranked(id * 10)
        } else {
            Criticality::non_critical()
        },
    );
    let _ = ctl.enqueue(req, map.locate(addr));
}

/// Steady-state tick throughput with a full transaction queue (every
/// completion backfilled), in million ticks per second.
fn measure_loaded_mticks(ticks: u64) -> f64 {
    let (mut ctl, map) = loaded_controller();
    let mut next_id = 48u64;
    let mut done = Vec::with_capacity(16);
    let t = Instant::now();
    for _ in 0..ticks {
        done.clear();
        ctl.tick_into(&mut done);
        for _ in &done {
            enqueue(&mut ctl, &map, next_id);
            next_id += 1;
        }
    }
    black_box(ctl.stats().reads_completed);
    ticks as f64 / t.elapsed().as_secs_f64() / 1e6
}

/// Tick throughput with an empty queue (the idle fast-forward path),
/// in million ticks per second.
fn measure_idle_mticks(ticks: u64) -> f64 {
    let cfg = DramConfig::paper_baseline();
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(FrFcfs::new()));
    let mut done = Vec::new();
    let t = Instant::now();
    for _ in 0..ticks {
        ctl.tick_into(&mut done);
    }
    black_box(done.len());
    ticks as f64 / t.elapsed().as_secs_f64() / 1e6
}

/// Wall-clock seconds for the quick-scale fig10+fig11 compare sweep on
/// a fresh runner with `jobs` workers.
fn measure_compare_seconds(jobs: usize) -> f64 {
    let mut r = Runner::new(Scale::quick());
    r.jobs = jobs;
    let t = Instant::now();
    black_box(r.run_parallel(fig10).to_table().to_string());
    black_box(r.run_parallel(fig11).to_table().to_string());
    t.elapsed().as_secs_f64()
}

/// Checkpoint boundary of the warm-start study, in CPU cycles. The
/// quick-scale swim run lasts ~120k cycles, so this models the
/// intended regime: a warmup region covering most of the run, shared
/// across cells instead of re-simulated by each one.
const WARM_BOUNDARY: u64 = 80_000;

/// Cells of the warm-start study: a serial scheduler sweep over one
/// workload under the paper's metric (plus the predictor-less
/// baseline), sharing a platform and workload so the warm path needs
/// exactly one warmup.
const WARM_CELLS: [(SchedulerKind, bool); 4] = [
    (SchedulerKind::FrFcfs, false),
    (SchedulerKind::FrFcfs, true),
    (SchedulerKind::CritCasRas, true),
    (SchedulerKind::CasRasCrit, true),
];

/// Wall-clock seconds for the warm-start study's sweep. `warm = None`
/// runs every cell cold from cycle zero; `Some(b)` shares one warmup
/// checkpoint taken at cycle `b`.
fn measure_sweep_seconds(warm: Option<u64>) -> f64 {
    let mut r = Runner::new(Scale::quick());
    r.jobs = 1;
    r.warm_cycles = warm;
    let t = Instant::now();
    for (sched, cbp) in WARM_CELLS {
        let pred = if cbp {
            PredictorKind::cbp64(CbpMetric::MaxStallTime)
        } else {
            PredictorKind::None
        };
        black_box(r.parallel("swim", sched, pred).cycles);
    }
    assert!(!r.has_failures(), "{:?}", r.failures());
    t.elapsed().as_secs_f64()
}

/// Request count of the long-horizon synthesis probe. Ten million
/// requests is far beyond what an in-memory trace capture would hold
/// comfortably (420 MB of records) — the point of the streaming
/// pipeline is that this costs one chunk buffer, not the trace.
const SYNTH_REQUESTS: u64 = 10_000_000;

/// Hand-built dense traffic profile for the throughput probe: eight
/// cores at the paper-baseline topology with one request every ~6 CPU
/// cycles in aggregate, so the controller stays saturated and wall
/// time measures simulation work rather than idle fast-forwarding.
/// (A profile fitted to a quick-scale capture has a mean gap an order
/// of magnitude larger, which would make the 10M-request run mostly
/// idle ticks.)
fn dense_profile() -> TrafficProfile {
    let dram = DramConfig::paper_baseline();
    let core = CoreProfile {
        weight: 0.125,
        write_frac: 0.25,
        prefetch_frac: 0.10,
        crit_frac: 0.30,
        mean_crit: 40.0,
        row_hit_frac: 0.60,
        footprint_rows: 64,
    };
    TrafficProfile {
        fingerprint: Fingerprint::of(8, 4_270, &dram),
        source: "bench:dense".to_string(),
        records_fitted: 0,
        mean_gap: 6.0,
        mean_issue_lag: 12.0,
        cores: vec![core; 8],
    }
}

struct StreamingNumbers {
    synth_seconds: f64,
    requests_per_sec: f64,
    stream_records: u64,
    peak_resident_bytes: usize,
}

/// The streaming-pipeline study: peak resident chunk memory while
/// replaying a real capture from disk, and sustained requests/sec for
/// a 10M-request synthesized run with windowed online stats enabled.
fn measure_streaming() -> StreamingNumbers {
    let mut r = Runner::new(Scale::quick());
    r.jobs = 1;
    let trace = r.capture("swim");
    let path = std::env::temp_dir().join(format!("critmem-bench-{}.cmtr", std::process::id()));
    trace.save(&path).expect("save bench trace");
    let streamed = stream_replay(&path, SchedulerKind::FrFcfs, ReplayConfig::default())
        .expect("stream replay");
    std::fs::remove_file(&path).ok();
    assert!(streamed.peak_resident_bytes <= CHUNK_BYTES);

    let out = synth_replay(
        &dense_profile(),
        42,
        SYNTH_REQUESTS,
        SchedulerKind::FrFcfs,
        ReplayConfig::default()
            .with_max_outstanding(64)
            .with_sampling(1_000_000)
            .with_sample_window(64),
    )
    .expect("synth replay");
    assert_eq!(out.generated, SYNTH_REQUESTS);
    StreamingNumbers {
        synth_seconds: out.seconds,
        requests_per_sec: SYNTH_REQUESTS as f64 / out.seconds,
        stream_records: streamed.records_read,
        peak_resident_bytes: streamed.peak_resident_bytes,
    }
}

/// Instruction budget of the skip-ahead probe: the `chase` latency
/// microbenchmark (a serialized pointer chase, memory-level
/// parallelism of one) alone on the paper baseline. The core spends
/// nearly the whole run stalled on a single outstanding DRAM access
/// with no forward delivery, sampler epoch, or controller event due —
/// exactly the regime the event-driven skip-ahead targets.
const SKIP_INSTR: u64 = 150_000;

fn skip_probe_cfg(skip_ahead: bool) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(SKIP_INSTR);
    cfg.cores = 1;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
    cfg.max_cycles = 1_000_000_000;
    cfg.skip_ahead = skip_ahead;
    cfg
}

fn encoded(stats: &RunStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    stats.encode(&mut w);
    w.into_bytes()
}

/// Wall-clock seconds for the DRAM-bound idle-heavy probe with the
/// event-driven skip-ahead off vs on, asserting both runs end with
/// byte-identical stats (the identity claim the speedup rides on).
fn measure_skip_ahead() -> (f64, f64) {
    let wl = AgentMix::Alone("chase");
    let run = |skip: bool| {
        let t = Instant::now();
        let out = Session::new(skip_probe_cfg(skip), &wl)
            .run()
            .expect("skip-ahead probe");
        (t.elapsed().as_secs_f64(), out.stats)
    };
    let (off_seconds, off_stats) = run(false);
    let (on_seconds, on_stats) = run(true);
    assert_eq!(
        encoded(&on_stats),
        encoded(&off_stats),
        "skip-ahead changed the probe's results"
    );
    (off_seconds, on_seconds)
}

/// Tick budget for the serial half of the sharded-kernel probe.
const SHARD_SERIAL_TICKS: u64 = 1_000_000;

/// Tick budget for the sharded half — smaller, because on a host
/// without spare cores every tick pays for worker wakeups with no
/// parallelism to offset them, and the block records rates, not
/// totals.
const SHARD_POOL_TICKS: u64 = 100_000;

fn eight_channel_system() -> DramSystem {
    let mut cfg = DramConfig::paper_baseline();
    cfg.org.channels = 8;
    DramSystem::new(cfg, |_| Box::new(FrFcfs::new()))
}

fn feed(dram: &mut DramSystem, id: u64) {
    // Spread across rows, banks, and all eight channels so every
    // shard's chunk stays busy.
    let addr = (id % 192) * 4 * 1024 + (id % 16) * 64;
    let req = MemRequest::new(id, addr, AccessKind::Read, CoreId((id % 8) as u8)).with_criticality(
        if id.is_multiple_of(3) {
            Criticality::ranked(id * 10)
        } else {
            Criticality::non_critical()
        },
    );
    let _ = dram.enqueue(req);
}

/// Steady-state Mticks/s of a loaded 8-channel system under the serial
/// tick vs the sharded tick with `shards` pool workers.
fn measure_sharded(shards: usize) -> (f64, f64) {
    let run = |ticks: u64, mut pool: Option<ShardPool>| {
        let mut dram = eight_channel_system();
        let mut next_id = 0u64;
        for _ in 0..192 {
            feed(&mut dram, next_id);
            next_id += 1;
        }
        let t = Instant::now();
        for _ in 0..ticks {
            let completed = match &mut pool {
                Some(p) => dram.tick_sharded(p).len(),
                None => dram.tick().len(),
            };
            for _ in 0..completed {
                feed(&mut dram, next_id);
                next_id += 1;
            }
        }
        let reads: u64 = dram.channel_stats().iter().map(|c| c.reads_completed).sum();
        black_box(reads);
        ticks as f64 / t.elapsed().as_secs_f64() / 1e6
    };
    let serial = run(SHARD_SERIAL_TICKS, None);
    let sharded = run(SHARD_POOL_TICKS, Some(ShardPool::new(shards)));
    (serial, sharded)
}

fn main() {
    // Display benches through the usual harness first.
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("engine");
    g.sample_size(5);
    g.bench_function("channel_tick_loaded", |b| {
        let (mut ctl, map) = loaded_controller();
        let mut next_id = 48u64;
        let mut done = Vec::with_capacity(16);
        b.iter(|| {
            done.clear();
            ctl.tick_into(&mut done);
            for _ in &done {
                enqueue(&mut ctl, &map, next_id);
                next_id += 1;
            }
        });
    });
    g.bench_function("channel_tick_idle", |b| {
        let cfg = DramConfig::paper_baseline();
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(FrFcfs::new()));
        let mut done = Vec::new();
        b.iter(|| ctl.tick_into(&mut done));
    });
    g.finish();

    // The recorded before/after study.
    let loaded = measure_loaded_mticks(2_000_000);
    let idle = measure_idle_mticks(20_000_000);
    let serial = measure_compare_seconds(1);
    // At least two workers so the plan/execute path is actually
    // exercised even on a single-CPU host.
    let jobs = default_jobs().max(2);
    let parallel = measure_compare_seconds(jobs);
    let cpus = default_jobs();

    // The warm-start study. A cold sweep re-simulates the warmup
    // region once per cell; a warm sweep simulates it exactly once
    // (the shared checkpoint), so the warmup-cycle ratio equals the
    // cell count by construction — wall clock is the measured part.
    let cold_sweep = measure_sweep_seconds(None);
    let warm_sweep = measure_sweep_seconds(Some(WARM_BOUNDARY));
    let cells = WARM_CELLS.len() as u64;
    let cold_warmup_cycles = cells * WARM_BOUNDARY;

    // The streaming-pipeline study.
    let streaming = measure_streaming();
    let synth_seconds = streaming.synth_seconds;
    let requests_per_sec = streaming.requests_per_sec;
    let stream_records = streaming.stream_records;
    let peak_resident = streaming.peak_resident_bytes;

    // The skip-ahead study: same simulation, clock advanced at event
    // granularity instead of cycle granularity through quiet windows.
    let (skip_off, skip_on) = measure_skip_ahead();

    // The sharded-kernel study: the DRAM tick of one simulation split
    // across pool workers. Worker count mirrors what a user would pick
    // (one per CPU, at most one per channel, at least two so the
    // barrier path is exercised even here).
    let shard_workers = default_jobs().clamp(2, 8);
    let (serial_mticks, sharded_mticks) = measure_sharded(shard_workers);

    let json = format!(
        "{{\n  \"host\": {{ \"cpus\": {cpus} }},\n  \"tick_kernel\": {{\n    \
         \"host_cpus\": {cpus},\n    \
         \"loaded_before_mticks_per_s\": {BEFORE_LOADED_MTICKS},\n    \
         \"loaded_after_mticks_per_s\": {loaded:.2},\n    \
         \"loaded_speedup\": {:.2},\n    \
         \"idle_before_mticks_per_s\": {BEFORE_IDLE_MTICKS},\n    \
         \"idle_after_mticks_per_s\": {idle:.1},\n    \
         \"idle_speedup\": {:.1},\n    \
         \"acceptance\": \"loaded_speedup >= 1.5\"\n  }},\n  \"engine\": {{\n    \
         \"workload\": \"repro --scale quick fig10 fig11 (fresh runner per measurement)\",\n    \
         \"host_cpus\": {cpus},\n    \
         \"serial_before_seconds\": {BEFORE_COMPARE_SECONDS},\n    \
         \"serial_after_seconds\": {serial:.2},\n    \
         \"jobs\": {jobs},\n    \
         \"parallel_seconds\": {parallel:.2},\n    \
         \"parallel_speedup_vs_serial\": {:.2},\n    \
         \"note\": \"parallel speedup requires >1 CPU; output is byte-identical either way\"\n  }},\n  \
         \"warm_start\": {{\n    \
         \"workload\": \"4-cell quick-scale scheduler sweep on swim, boundary {WARM_BOUNDARY} cycles\",\n    \
         \"host_cpus\": {cpus},\n    \
         \"cells\": {cells},\n    \
         \"cold_warmup_cycles\": {cold_warmup_cycles},\n    \
         \"warm_warmup_cycles\": {WARM_BOUNDARY},\n    \
         \"warmup_cycle_ratio\": {:.1},\n    \
         \"cold_sweep_seconds\": {cold_sweep:.2},\n    \
         \"warm_sweep_seconds\": {warm_sweep:.2},\n    \
         \"warm_speedup\": {:.2},\n    \
         \"acceptance\": \"warmup_cycle_ratio >= 3; per-cell stats byte-identical (tests/checkpoint.rs)\"\n  }},\n  \
         \"streaming\": {{\n    \
         \"workload\": \"synthesized dense 8-core traffic, FR-FCFS, 64 outstanding, epoch 1M + window 64\",\n    \
         \"host_cpus\": {cpus},\n    \
         \"synth_requests\": {SYNTH_REQUESTS},\n    \
         \"synth_seconds\": {synth_seconds:.2},\n    \
         \"requests_per_sec\": {requests_per_sec:.0},\n    \
         \"stream_records\": {stream_records},\n    \
         \"peak_resident_chunk_bytes\": {peak_resident},\n    \
         \"chunk_bytes\": {CHUNK_BYTES},\n    \
         \"acceptance\": \"requests_per_sec measured over >= 10000000 synthesized requests; peak_resident_chunk_bytes <= chunk_bytes\"\n  }},\n  \
         \"skip_ahead\": {{\n    \
         \"workload\": \"chase latency microbenchmark alone ({SKIP_INSTR} instructions, MLP 1) on the paper baseline — DRAM-bound and idle-heavy\",\n    \
         \"host_cpus\": {cpus},\n    \
         \"off_seconds\": {skip_off:.2},\n    \
         \"on_seconds\": {skip_on:.2},\n    \
         \"speedup\": {:.2},\n    \
         \"acceptance\": \"speedup >= 3 on the DRAM-bound idle-heavy probe; stats byte-identical (asserted here and in tests/sharded_kernel.rs)\"\n  }},\n  \
         \"sharded\": {{\n    \
         \"workload\": \"loaded 8-channel DramSystem steady-state tick, FR-FCFS\",\n    \
         \"host_cpus\": {cpus},\n    \
         \"shards\": {shard_workers},\n    \
         \"serial_mticks_per_s\": {serial_mticks:.2},\n    \
         \"sharded_mticks_per_s\": {sharded_mticks:.2},\n    \
         \"sharded_speedup\": {:.2},\n    \
         \"note\": \"speedup > 1 requires host_cpus > 1; a 1-CPU host measures pure barrier overhead — output is byte-identical either way\",\n    \
         \"acceptance\": \"sharded_speedup > 1 when host_cpus > 1\"\n  }}\n}}\n",
        loaded / BEFORE_LOADED_MTICKS,
        idle / BEFORE_IDLE_MTICKS,
        serial / parallel,
        cells as f64,
        cold_sweep / warm_sweep,
        skip_off / skip_on,
        sharded_mticks / serial_mticks,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("\n{json}");
    println!("wrote {path}");
}
