//! Regenerates the parallel-workload figures: Figure 1 (ROB blocking),
//! Figure 3 (binary criticality, both arrangements, table-size sweep),
//! Figure 4 (ranked criticality), Figure 5 (MaxStallTime size sweep),
//! Figure 6 (L2 miss latency split), and Figure 7 (prefetching).
//!
//! The regenerated tables are printed once, then the per-figure
//! harnesses are timed.

use critmem::experiments::{fig1, fig3, fig4, fig5, fig6, fig7};
use critmem_bench::bench_runner;
use critmem_bench::{criterion_group, criterion_main, Criterion};

fn print_once() {
    let mut r = bench_runner();
    println!("{}", fig1(&mut r).to_table());
    let (a, b) = fig3(&mut r);
    println!("{}", a.to_table());
    println!("{}", b.to_table());
    println!("{}", fig4(&mut r).to_table());
    println!("{}", fig5(&mut r).to_table());
    println!("{}", fig6(&mut r).to_table());
    println!("{}", fig7(&mut r).to_table());
}

fn bench(c: &mut Criterion) {
    print_once();
    let mut g = c.benchmark_group("parallel_figures");
    g.sample_size(10);
    g.bench_function("fig1", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            fig1(&mut r)
        })
    });
    g.bench_function("fig4", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            fig4(&mut r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
