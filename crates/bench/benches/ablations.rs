//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! 1. criticality placement: Crit-CASRAS vs CASRAS-Crit (paper §5.2
//!    finds them equivalent, hence the compact implementation),
//! 2. the starvation cap (§3.2: 6,000 DRAM cycles, "never reached"),
//! 3. page vs cache-line interleaving under FR-FCFS,
//! 4. periodic CBP reset (§5.3.2).

use critmem::experiments::TextTable;
use critmem::PredictorKind;
use critmem_bench::bench_runner;
use critmem_bench::{criterion_group, criterion_main, Criterion};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn ablation_tables() {
    let mut r = bench_runner();
    let apps = r.scale.apps.clone();

    // 1. Arrangement: the two priority orders should track each other.
    let mut t = TextTable::new(
        "Ablation: Crit-CASRAS vs CASRAS-Crit (MaxStallTime, vs FR-FCFS)",
        &["Crit-CASRAS", "CASRAS-Crit"],
    );
    for &app in &apps {
        let base = r.baseline(app).cycles as f64;
        let a = r
            .parallel(
                app,
                SchedulerKind::CritCasRas,
                PredictorKind::cbp64(CbpMetric::MaxStallTime),
            )
            .cycles as f64;
        let b = r
            .parallel(
                app,
                SchedulerKind::CasRasCrit,
                PredictorKind::cbp64(CbpMetric::MaxStallTime),
            )
            .cycles as f64;
        t.row(
            app,
            vec![TextTable::pct(base / a), TextTable::pct(base / b)],
        );
    }
    println!("{t}");

    // 2. Starvation-cap sweep.
    let mut t = TextTable::new(
        "Ablation: starvation cap (MaxStallTime, avg speedup vs FR-FCFS)",
        &["speedup"],
    );
    for cap in [1_500u64, 6_000, 24_000] {
        let mut speedups = Vec::new();
        for &app in &apps {
            let base = r.baseline(app).cycles as f64;
            let v = r.parallel_with(
                app,
                SchedulerKind::CasRasCrit,
                PredictorKind::cbp64(CbpMetric::MaxStallTime),
                &format!("cap{cap}"),
                |mut c| {
                    c.dram.starvation_cap = cap;
                    c
                },
            );
            speedups.push(base / v.cycles as f64);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        t.row(format!("cap {cap}"), vec![TextTable::pct(avg)]);
    }
    println!("{t}");

    // 3. Interleaving policy under plain FR-FCFS.
    let mut t = TextTable::new(
        "Ablation: address interleaving (FR-FCFS, cycles ratio page/cacheline)",
        &["page vs cache-line"],
    );
    for &app in &apps {
        let page = r.baseline(app).cycles as f64;
        let line = r.parallel_with(
            app,
            SchedulerKind::FrFcfs,
            PredictorKind::None,
            "cacheline",
            |mut c| {
                c.dram.interleaving = critmem_dram::Interleaving::CacheLine;
                c
            },
        );
        t.row(app, vec![TextTable::ratio(line.cycles as f64 / page)]);
    }
    println!("{t}");
}

fn bench(c: &mut Criterion) {
    ablation_tables();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("arrangement_pair", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            let base = r.baseline("mg").cycles;
            let v = r
                .parallel(
                    "mg",
                    SchedulerKind::CasRasCrit,
                    PredictorKind::cbp64(CbpMetric::MaxStallTime),
                )
                .cycles;
            (base, v)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
