//! Regenerates Figure 12: multiprogrammed weighted speedups normalized
//! to PAR-BS, plus the maximum-slowdown fairness numbers.

use critmem::experiments::fig12;
use critmem_bench::bench_runner;
use critmem_bench::{criterion_group, criterion_main, Criterion};

fn print_once() {
    let mut r = bench_runner();
    let f = fig12(&mut r);
    println!("{}", f.to_table());
    println!(
        "max slowdown: TCM {:.3} vs MaxStallTime {:.3}",
        f.max_slowdown_tcm, f.max_slowdown_crit
    );
}

fn bench(c: &mut Criterion) {
    print_once();
    let mut g = c.benchmark_group("multiprogrammed");
    g.sample_size(10);
    g.bench_function("fig12", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            fig12(&mut r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
