//! Regenerates the configuration-sweep figures: Figure 8 (ranks per
//! channel, DDR3-1600/2133), Figure 9 (load-queue size), and Figure 11
//! (MORSE command-evaluation width).

use critmem::experiments::{fig11, fig8, fig9};
use critmem_bench::bench_runner;
use critmem_bench::{criterion_group, criterion_main, Criterion};

fn print_once() {
    let mut r = bench_runner();
    println!("{}", fig8(&mut r).to_table());
    println!("{}", fig9(&mut r).to_table());
    println!("{}", fig11(&mut r).to_table());
}

fn bench(c: &mut Criterion) {
    print_once();
    let mut g = c.benchmark_group("sweep_figures");
    g.sample_size(10);
    g.bench_function("fig9", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            fig9(&mut r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
