//! Regenerates the scheduler-comparison material: Figure 10
//! (MaxStallTime vs AHB vs MORSE-P vs Crit-RL), Table 5 (counter
//! widths), Table 7 (summary), the §5.1 naive-forwarding experiment,
//! and the §5.3.2 table-reset study.

use critmem::experiments::{fig10, naive, reset_study, table5, table7};
use critmem_bench::bench_runner;
use critmem_bench::{criterion_group, criterion_main, Criterion};

fn print_once() {
    let mut r = bench_runner();
    println!("{}", fig10(&mut r).to_table());
    println!("{}", table5(&mut r).to_table());
    println!("{}", naive(&mut r).to_table());
    println!("{}", reset_study(&mut r).to_table());
    let mut r2 = bench_runner();
    // Table 7 composes figs 4/10/12; run it on its own runner so the
    // print stays self-contained.
    println!("{}", table7(&mut r2).to_table());
}

fn bench(c: &mut Criterion) {
    print_once();
    let mut g = c.benchmark_group("comparison_figures");
    g.sample_size(10);
    g.bench_function("table5", |b| {
        b.iter(|| {
            let mut r = bench_runner();
            table5(&mut r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
