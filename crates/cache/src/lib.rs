//! Cache hierarchy for the `critmem` simulator: per-core L1 data
//! caches under a shared, inclusive, directory-coherent L2 with MSHRs
//! and an optional stream prefetcher.
//!
//! Geometry and latencies default to Tables 1 and 3 of the ISCA 2013
//! paper being reproduced: 32 kB 4-way L1s with 32 B lines and 16
//! MSHRs; a 4 MB 8-way shared L2 with 64 B lines, 64 MSHRs, and a
//! 32-cycle uncontended round trip.
//!
//! # Examples
//!
//! ```
//! use critmem_cache::{AccessOutcome, CacheAccessKind, CacheHierarchy, HierarchyConfig};
//! use critmem_common::{CoreId, Criticality};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::paper_baseline(2));
//! let out = h.access(CoreId(0), 0x1000, CacheAccessKind::Load,
//!                    Criticality::non_critical(), 0);
//! assert!(matches!(out, AccessOutcome::Pending(_))); // cold miss
//! ```

pub mod array;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;

pub use array::{CacheArray, Evicted, Line};
pub use hierarchy::{
    AccessOutcome, AccessToken, CacheAccessKind, CacheCompletion, CacheHierarchy, HierarchyConfig,
    HierarchyStats,
};
pub use mshr::{MshrFile, MshrOutcome, MshrTarget};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
