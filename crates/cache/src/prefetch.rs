//! L2 stream prefetcher (§5.5), after the feedback-directed stream
//! prefetcher of Srinath et al. that the paper configures aggressively:
//! 64 streams, prefetch distance 64, degree 4.
//!
//! A stream tracks a region of memory being walked monotonically. On a
//! demand L2 miss the prefetcher either trains an existing stream
//! (issuing `degree` prefetches up to `distance` lines ahead) or
//! allocates a new one, LRU-replacing the oldest.

use critmem_common::PhysAddr;

/// Stream prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Maximum concurrently tracked streams (paper: 64; §5.5 also
    /// checks 128/256).
    pub streams: usize,
    /// Lookahead distance in cache lines (paper: 64).
    pub distance: u64,
    /// Prefetches issued per triggering miss (paper: 4).
    pub degree: usize,
    /// Line size in bytes (the L2's 64 B).
    pub line_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            streams: 64,
            distance: 64,
            degree: 4,
            line_bytes: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last demanded line number.
    last_line: u64,
    /// Next line number to prefetch.
    next_pf: u64,
    /// +1 ascending, -1 descending.
    dir: i64,
    /// Confidence: consecutive hits in-direction.
    trained: bool,
    lru: u64,
}

/// The stream prefetcher.
///
/// # Examples
///
/// ```
/// use critmem_cache::{PrefetchConfig, StreamPrefetcher};
/// let mut pf = StreamPrefetcher::new(PrefetchConfig::default());
/// // Two misses in ascending order train a stream …
/// assert!(pf.on_demand_miss(0x0000).is_empty());
/// let prefetches = pf.on_demand_miss(0x0040);
/// // … which then emits `degree` prefetch addresses ahead.
/// assert_eq!(prefetches.len(), 4);
/// assert_eq!(prefetches[0], 0x0080);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    streams: Vec<Stream>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero streams/degree or a
    /// non-power-of-two line size.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(
            cfg.streams > 0 && cfg.degree > 0,
            "streams and degree must be nonzero"
        );
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        StreamPrefetcher {
            cfg,
            streams: Vec::with_capacity(cfg.streams),
            clock: 0,
            issued: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> PrefetchConfig {
        self.cfg
    }

    /// Total prefetch addresses emitted.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand L2 miss; returns line-aligned addresses to
    /// prefetch (possibly empty while a stream trains).
    pub fn on_demand_miss(&mut self, addr: PhysAddr) -> Vec<PhysAddr> {
        self.clock += 1;
        let clock = self.clock;
        let line = addr / self.cfg.line_bytes;
        // Find a stream whose window covers this line.
        let window = self.cfg.distance;
        let found = self.streams.iter_mut().find(|s| {
            let delta = line as i64 - s.last_line as i64;
            delta != 0 && delta.unsigned_abs() <= window && (delta > 0) == (s.dir > 0)
        });
        let mut out = Vec::new();
        if let Some(s) = found {
            s.lru = clock;
            s.last_line = line;
            if !s.trained {
                s.trained = true;
                s.next_pf = (line as i64 + s.dir) as u64;
            }
            // Issue up to `degree` prefetches, staying within
            // `distance` lines of the demand stream.
            for _ in 0..self.cfg.degree {
                let ahead = (s.next_pf as i64 - line as i64).unsigned_abs();
                if ahead > self.cfg.distance {
                    break;
                }
                out.push(s.next_pf * self.cfg.line_bytes);
                s.next_pf = (s.next_pf as i64 + s.dir) as u64;
            }
            self.issued += out.len() as u64;
            return out;
        }
        // Allocate a new (untrained) stream pair of directions: assume
        // ascending first; direction is fixed by the second miss.
        let s = Stream {
            last_line: line,
            next_pf: line + 1,
            dir: 1,
            trained: false,
            lru: clock,
        };
        if self.streams.len() < self.cfg.streams {
            self.streams.push(s);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
            *victim = s;
        }
        // Also consider descending trains: if a stream exists with
        // opposite direction within the window, flip it.
        out
    }
}

impl critmem_common::Snapshot for StreamPrefetcher {
    /// Stream order is state (training matches the first covering
    /// stream), so streams are serialized verbatim.
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.streams.len() as u32);
        for s in &self.streams {
            w.put_u64(s.last_line);
            w.put_u64(s.next_pf);
            w.put_u64(s.dir as u64);
            w.put_bool(s.trained);
            w.put_u64(s.lru);
        }
        w.put_u64(self.clock);
        w.put_u64(self.issued);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n > self.cfg.streams {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} streams, table capacity is {}",
                    self.cfg.streams
                ),
                offset: r.position(),
            });
        }
        self.streams.clear();
        for _ in 0..n {
            let last_line = r.get_u64()?;
            let next_pf = r.get_u64()?;
            let dir = r.get_u64()? as i64;
            let trained = r.get_bool()?;
            let lru = r.get_u64()?;
            self.streams.push(Stream {
                last_line,
                next_pf,
                dir,
                trained,
                lru,
            });
        }
        self.clock = r.get_u64()?;
        self.issued = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig {
            streams: 4,
            distance: 16,
            degree: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn first_miss_trains_silently() {
        let mut p = pf();
        assert!(p.on_demand_miss(0).is_empty());
    }

    #[test]
    fn ascending_stream_prefetches_ahead() {
        let mut p = pf();
        p.on_demand_miss(0);
        let out = p.on_demand_miss(64);
        assert_eq!(out, vec![128, 192]);
        let out = p.on_demand_miss(128);
        assert_eq!(out, vec![256, 320]);
        assert_eq!(p.issued(), 4);
    }

    #[test]
    fn distance_caps_runahead() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            streams: 4,
            distance: 3,
            degree: 8,
            line_bytes: 64,
        });
        p.on_demand_miss(0);
        let out = p.on_demand_miss(64);
        // Only lines within 3 of the demand line (line 1): 2, 3, 4.
        assert_eq!(out, vec![128, 192, 256]);
    }

    #[test]
    fn unrelated_misses_do_not_cross_train() {
        let mut p = pf();
        p.on_demand_miss(0);
        // Far away: new stream, no prefetches.
        assert!(p.on_demand_miss(1 << 30).is_empty());
    }

    #[test]
    fn stream_table_is_lru_bounded() {
        let mut p = pf(); // 4 streams
        for i in 0..10u64 {
            p.on_demand_miss(i << 24);
        }
        assert!(p.streams.len() <= 4);
    }

    #[test]
    fn interleaved_streams_from_multiple_threads() {
        // Two interleaved ascending streams should both train (this is
        // what *works*; the paper notes that many parallel threads with
        // *similar* address streams confuse the training — modeled by
        // streams competing for table entries).
        let mut p = pf();
        p.on_demand_miss(0);
        p.on_demand_miss(1 << 24);
        let a = p.on_demand_miss(64);
        let b = p.on_demand_miss((1 << 24) + 64);
        assert!(!a.is_empty());
        assert!(!b.is_empty());
    }
}
