//! The two-level cache hierarchy of Tables 1 and 3: per-core L1 data
//! caches (32 kB, 4-way, 32 B lines, 16 MSHRs) under a shared,
//! inclusive L2 (4 MB, 8-way, 64 B lines, 64 MSHRs, 32-cycle
//! round-trip) with a directory for MESI-style invalidation and an
//! optional stream prefetcher (§5.5).
//!
//! # Timing model
//!
//! Latency is attributed at access time where it is statically known
//! (L1 hit, L2 hit) and at DRAM completion otherwise. Cache *state*
//! updates happen synchronously at the access — a simplification worth
//! a few tens of CPU cycles of skew against a fully pipelined model,
//! negligible next to the several-hundred-cycle DRAM latencies the
//! paper's mechanism targets (simplification recorded in DESIGN.md).
//!
//! # Criticality plumbing
//!
//! The processor supplies a [`Criticality`] with every access; it rides
//! on the [`MemRequest`] emitted on an L2 miss, which is exactly the
//! paper's "piggyback the CBP bits on the request" design (§3.2).

use crate::array::CacheArray;
use crate::mshr::{MshrFile, MshrOutcome, MshrTarget};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use critmem_common::{
    AccessKind, CoreId, CpuCycle, Criticality, MemRequest, PhysAddr, ReqId, RunningMean,
};
use std::collections::{HashMap, VecDeque};

/// Kind of processor-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccessKind {
    /// Data load.
    Load,
    /// Data store (needs exclusive permission).
    Store,
}

/// Opaque handle for an in-flight access; completions are reported
/// against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessToken(pub u64);

/// A wakeup delivered when a DRAM fill satisfies an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCompletion {
    /// Core whose access completed.
    pub core: CoreId,
    /// The token returned by [`CacheHierarchy::access`].
    pub token: AccessToken,
    /// CPU cycle at which the core sees the data.
    pub done: CpuCycle,
}

/// Immediate result of [`CacheHierarchy::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completes at the given CPU cycle (cache hit).
    Done(CpuCycle),
    /// The access misses to DRAM; completion arrives later via
    /// [`CacheHierarchy::dram_completed`].
    Pending(AccessToken),
    /// Structural hazard (MSHRs full); retry next cycle.
    Retry,
}

/// Configuration of the hierarchy (defaults = Tables 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1s).
    pub num_cores: usize,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 line size in bytes.
    pub l1_line: u64,
    /// L1 MSHR entries.
    pub l1_mshrs: usize,
    /// L1 hit round-trip latency (CPU cycles).
    pub l1_hit_latency: u64,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 line size in bytes.
    pub l2_line: u64,
    /// L2 MSHR entries (64 baseline; 32 for multiprogrammed runs).
    pub l2_mshrs: usize,
    /// L2 hit round-trip latency (CPU cycles, uncontended).
    pub l2_hit_latency: u64,
    /// Latency from the L2 issuing a request to it reaching the memory
    /// controller's transaction queue.
    pub l2_to_mem_latency: u64,
    /// Latency from DRAM data arrival to the waiting core's wakeup.
    pub fill_latency: u64,
    /// Cost of a coherence upgrade (store to a shared line).
    pub upgrade_latency: u64,
    /// Stream prefetcher, if enabled.
    pub prefetch: Option<PrefetchConfig>,
}

impl HierarchyConfig {
    /// The paper's 8-core baseline.
    pub fn paper_baseline(num_cores: usize) -> Self {
        HierarchyConfig {
            num_cores,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_line: 32,
            l1_mshrs: 16,
            l1_hit_latency: 3,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 8,
            l2_line: 64,
            l2_mshrs: 64,
            l2_hit_latency: 32,
            l2_to_mem_latency: 12,
            fill_latency: 8,
            upgrade_latency: 12,
            prefetch: None,
        }
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Demand accesses that reached the L2.
    pub l2_accesses: u64,
    /// Demand L2 hits.
    pub l2_hits: u64,
    /// Demand L2 misses (requests sent to DRAM or merged onto one).
    pub l2_misses: u64,
    /// L2 hits on lines the prefetcher brought in.
    pub prefetch_useful: u64,
    /// Prefetch requests sent to DRAM.
    pub prefetches_sent: u64,
    /// Write-backs emitted to DRAM.
    pub writebacks: u64,
    /// Coherence upgrades (stores to shared lines).
    pub upgrades: u64,
    /// Coherence invalidations delivered to L1s.
    pub invalidations: u64,
    /// Mean L2-miss service latency for loads flagged critical.
    pub miss_latency_critical: RunningMean,
    /// Mean L2-miss service latency for non-critical loads.
    pub miss_latency_noncritical: RunningMean,
}

impl HierarchyStats {
    /// Demand L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }

    /// Serializes for the sweep journal.
    pub fn encode(&self, w: &mut critmem_common::codec::ByteWriter) {
        for v in [
            self.l2_accesses,
            self.l2_hits,
            self.l2_misses,
            self.prefetch_useful,
            self.prefetches_sent,
            self.writebacks,
            self.upgrades,
            self.invalidations,
        ] {
            w.put_u64(v);
        }
        self.miss_latency_critical.encode(w);
        self.miss_latency_noncritical.encode(w);
    }

    /// Deserializes journaled hierarchy statistics.
    ///
    /// # Errors
    ///
    /// Fails on a truncated stream.
    pub fn decode(
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<Self, critmem_common::codec::CodecError> {
        Ok(HierarchyStats {
            l2_accesses: r.get_u64()?,
            l2_hits: r.get_u64()?,
            l2_misses: r.get_u64()?,
            prefetch_useful: r.get_u64()?,
            prefetches_sent: r.get_u64()?,
            writebacks: r.get_u64()?,
            upgrades: r.get_u64()?,
            invalidations: r.get_u64()?,
            miss_latency_critical: RunningMean::decode(r)?,
            miss_latency_noncritical: RunningMean::decode(r)?,
        })
    }
}

impl critmem_common::Observable for CacheHierarchy {
    /// Emits one `cache.l2` component covering the shared L2 and its
    /// MSHR file (the per-core L1s contribute to `cpu.coreN` IPC
    /// instead of reporting separately).
    fn observe(&self, v: &mut dyn critmem_common::MetricVisitor) {
        v.component("cache.l2");
        let s = &self.stats;
        v.counter("l2_accesses", "accesses", s.l2_accesses);
        v.counter("l2_hits", "accesses", s.l2_hits);
        v.counter("l2_misses", "accesses", s.l2_misses);
        v.gauge("l2_hit_rate", "ratio", s.l2_hit_rate());
        v.gauge("mshr_occupancy", "entries", self.l2_mshr.len() as f64);
        v.counter("mshr_peak", "entries", self.l2_mshr.peak() as u64);
        v.counter("mshr_merges", "misses", self.l2_mshr.merges());
        v.counter("mshr_rejections", "requests", self.l2_mshr.rejections());
        v.counter("prefetches_sent", "requests", s.prefetches_sent);
        v.counter("prefetch_useful", "hits", s.prefetch_useful);
        v.counter("writebacks", "requests", s.writebacks);
        v.gauge(
            "miss_latency_critical",
            "cpu-cycles",
            s.miss_latency_critical.mean().unwrap_or(0.0),
        );
        v.gauge(
            "miss_latency_noncritical",
            "cpu-cycles",
            s.miss_latency_noncritical.mean().unwrap_or(0.0),
        );
    }
}

#[derive(Debug, Clone, Copy)]
struct AccessInfo {
    addr: PhysAddr,
    is_write: bool,
    crit: Criticality,
    start: CpuCycle,
    core: CoreId,
}

#[derive(Debug, Clone)]
struct OutboxEntry {
    req: MemRequest,
    ready_at: CpuCycle,
}

/// The cache hierarchy. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1d: Vec<CacheArray>,
    l1_mshr: Vec<MshrFile>,
    l2: CacheArray,
    l2_mshr: MshrFile,
    prefetcher: Option<StreamPrefetcher>,
    outbox: VecDeque<OutboxEntry>,
    info: HashMap<u64, AccessInfo>,
    next_token: u64,
    next_req: ReqId,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (L1 line must divide L2 line).
    pub fn new(cfg: HierarchyConfig) -> Self {
        // Zero cores is legal: an agent-only heterogeneous mix builds
        // a hierarchy nothing ever accesses.
        assert!(cfg.num_cores <= 8, "at most 8 cores supported");
        assert!(
            cfg.l2_line.is_multiple_of(cfg.l1_line),
            "L1 line ({}) must divide L2 line ({})",
            cfg.l1_line,
            cfg.l2_line
        );
        CacheHierarchy {
            cfg,
            l1d: (0..cfg.num_cores)
                .map(|_| CacheArray::new(cfg.l1_bytes, cfg.l1_ways, cfg.l1_line))
                .collect(),
            l1_mshr: (0..cfg.num_cores)
                .map(|_| MshrFile::new(cfg.l1_mshrs, cfg.l1_line))
                .collect(),
            l2: CacheArray::new(cfg.l2_bytes, cfg.l2_ways, cfg.l2_line),
            l2_mshr: MshrFile::new(cfg.l2_mshrs, cfg.l2_line),
            prefetcher: cfg.prefetch.map(StreamPrefetcher::new),
            outbox: VecDeque::new(),
            info: HashMap::new(),
            next_token: 0,
            next_req: 0,
            stats: HierarchyStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Per-core L1 hit rate.
    pub fn l1_hit_rate(&self, core: CoreId) -> f64 {
        self.l1d[core.index()].hit_rate()
    }

    /// Performs a data access for `core` at `addr`.
    ///
    /// `crit` is the processor-side criticality prediction for the
    /// load (stores pass `Criticality::non_critical()`).
    pub fn access(
        &mut self,
        core: CoreId,
        addr: PhysAddr,
        kind: CacheAccessKind,
        crit: Criticality,
        now: CpuCycle,
    ) -> AccessOutcome {
        let is_write = kind == CacheAccessKind::Store;
        let ci = core.index();
        // ---- L1 lookup ----
        let l1_hit = {
            let l1 = &mut self.l1d[ci];
            match l1.probe(addr) {
                Some(line) => {
                    let needs_upgrade = is_write && !line.exclusive;
                    if is_write {
                        line.dirty = true;
                        line.exclusive = true;
                    }
                    Some(needs_upgrade)
                }
                None => None,
            }
        };
        if let Some(needs_upgrade) = l1_hit {
            let mut latency = self.cfg.l1_hit_latency;
            if needs_upgrade {
                self.upgrade(core, addr);
                latency += self.cfg.upgrade_latency;
            }
            return AccessOutcome::Done(now + latency);
        }
        // If the L1 line is already being fetched, merge.
        if self.l1_mshr[ci].pending(addr) {
            let token = self.alloc_token(core, addr, is_write, crit, now);
            self.l1_mshr[ci].register(addr, MshrTarget { token, is_write });
            return AccessOutcome::Pending(AccessToken(token));
        }
        if self.l1_mshr[ci].is_full() {
            return AccessOutcome::Retry;
        }
        // ---- L2 lookup (demand) ----
        self.stats.l2_accesses += 1;
        let l2_hit = self.l2.probe(addr).is_some();
        if l2_hit {
            self.stats.l2_hits += 1;
            let (sharers, was_prefetched) = {
                let line = self.l2.peek_mut(addr).expect("probed hit");
                let was_prefetched = line.prefetched;
                line.prefetched = false;
                let sharers = line.sharers;
                line.sharers |= 1 << ci;
                if is_write {
                    line.sharers = 1 << ci;
                }
                (sharers, was_prefetched)
            };
            if was_prefetched {
                self.stats.prefetch_useful += 1;
            }
            if is_write && sharers & !(1 << ci) != 0 {
                self.invalidate_l1_copies(self.l2.line_addr(addr), sharers, Some(core));
            }
            self.fill_l1(core, addr, is_write);
            return AccessOutcome::Done(now + self.cfg.l2_hit_latency);
        }
        // ---- L2 miss ----
        self.stats.l2_misses += 1;
        let token = self.alloc_token(core, addr, is_write, crit, now);
        match self.l2_mshr.register(addr, MshrTarget { token, is_write }) {
            MshrOutcome::Merged => {
                self.l1_mshr[ci].register(addr, MshrTarget { token, is_write });
                self.train_prefetcher(addr, core, now);
                AccessOutcome::Pending(AccessToken(token))
            }
            MshrOutcome::NewMiss => {
                self.l1_mshr[ci].register(addr, MshrTarget { token, is_write });
                let line_addr = self.l2.line_addr(addr);
                let req = MemRequest::new(self.next_req, line_addr, AccessKind::Read, core)
                    .with_criticality(crit)
                    .with_issue_cycle(now);
                self.next_req += 1;
                self.outbox.push_back(OutboxEntry {
                    req,
                    ready_at: now + self.cfg.l2_to_mem_latency,
                });
                self.train_prefetcher(addr, core, now);
                AccessOutcome::Pending(AccessToken(token))
            }
            MshrOutcome::Full => {
                self.info.remove(&token);
                AccessOutcome::Retry
            }
        }
    }

    fn alloc_token(
        &mut self,
        core: CoreId,
        addr: PhysAddr,
        is_write: bool,
        crit: Criticality,
        now: CpuCycle,
    ) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.info.insert(
            token,
            AccessInfo {
                addr,
                is_write,
                crit,
                start: now,
                core,
            },
        );
        token
    }

    /// Store hit on a non-exclusive L1 line: invalidate other sharers
    /// through the L2 directory.
    fn upgrade(&mut self, core: CoreId, addr: PhysAddr) {
        self.stats.upgrades += 1;
        let line_addr = self.l2.line_addr(addr);
        if let Some(line) = self.l2.peek_mut(line_addr) {
            let sharers = line.sharers;
            line.sharers = 1 << core.index();
            line.dirty = true;
            if sharers & !(1 << core.index()) != 0 {
                self.invalidate_l1_copies(line_addr, sharers, Some(core));
            }
        }
    }

    /// Invalidates all L1 copies of an L2 line in the given sharer set
    /// (except `keep`). Dirty data folds back into the L2 line.
    fn invalidate_l1_copies(&mut self, l2_line: PhysAddr, sharers: u8, keep: Option<CoreId>) {
        let mut dirty = false;
        let halves = self.cfg.l2_line / self.cfg.l1_line;
        for c in 0..self.cfg.num_cores {
            if sharers & (1 << c) == 0 {
                continue;
            }
            if keep.map(|k| k.index()) == Some(c) {
                continue;
            }
            for h in 0..halves {
                if let Some(gone) = self.l1d[c].invalidate(l2_line + h * self.cfg.l1_line) {
                    self.stats.invalidations += 1;
                    dirty |= gone.dirty;
                }
            }
        }
        if dirty {
            if let Some(line) = self.l2.peek_mut(l2_line) {
                line.dirty = true;
            }
        }
    }

    /// Installs a line into `core`'s L1, handling dirty eviction into
    /// the (inclusive) L2.
    fn fill_l1(&mut self, core: CoreId, addr: PhysAddr, exclusive: bool) {
        let ci = core.index();
        let (evicted, line) = self.l1d[ci].insert(addr);
        line.exclusive = exclusive;
        line.dirty = exclusive; // store fills dirty the line immediately
        if let Some(ev) = evicted {
            // Victim write-back folds into L2 (inclusive), or to DRAM
            // in the rare case inclusion was broken by a race.
            if ev.dirty {
                match self.l2.peek_mut(ev.addr) {
                    Some(l2l) => l2l.dirty = true,
                    None => self.emit_writeback(ev.addr, core),
                }
            }
            // Directory: this core no longer holds the victim.
            let l2_victim_line = self.l2.line_addr(ev.addr);
            if let Some(l2l) = self.l2.peek_mut(l2_victim_line) {
                // Only clear the sharer bit if no other half remains.
                let halves = self.cfg.l2_line / self.cfg.l1_line;
                let mut still_holds = false;
                for h in 0..halves {
                    if self.l1d[ci]
                        .peek(l2_victim_line + h * self.cfg.l1_line)
                        .is_some()
                    {
                        still_holds = true;
                    }
                }
                if !still_holds {
                    l2l.sharers &= !(1 << ci);
                }
            }
        }
    }

    fn emit_writeback(&mut self, line_addr: PhysAddr, core: CoreId) {
        self.stats.writebacks += 1;
        let req = MemRequest::new(self.next_req, line_addr, AccessKind::Write, core);
        self.next_req += 1;
        self.outbox.push_back(OutboxEntry { req, ready_at: 0 });
    }

    fn train_prefetcher(&mut self, addr: PhysAddr, core: CoreId, now: CpuCycle) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        let line_addr = self.l2.line_addr(addr);
        for pf_addr in pf.on_demand_miss(line_addr) {
            if self.l2.peek(pf_addr).is_some() || self.l2_mshr.pending(pf_addr) {
                continue;
            }
            if self.l2_mshr.register_prefetch(pf_addr) == MshrOutcome::NewMiss {
                self.stats.prefetches_sent += 1;
                let req = MemRequest::new(self.next_req, pf_addr, AccessKind::Prefetch, core)
                    .with_issue_cycle(now);
                self.next_req += 1;
                self.outbox.push_back(OutboxEntry {
                    req,
                    ready_at: now + self.cfg.l2_to_mem_latency,
                });
            }
        }
    }

    /// Pops the next memory request whose issue latency has elapsed.
    /// If the DRAM queue rejects it, hand it back via
    /// [`Self::unpop_request`].
    pub fn pop_request(&mut self, now: CpuCycle) -> Option<MemRequest> {
        match self.outbox.front() {
            Some(e) if e.ready_at <= now => Some(self.outbox.pop_front().expect("front").req),
            _ => None,
        }
    }

    /// Returns a rejected request to the head of the outbox.
    pub fn unpop_request(&mut self, req: MemRequest) {
        self.outbox.push_front(OutboxEntry { req, ready_at: 0 });
    }

    /// Number of requests waiting to enter the memory controllers.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// CPU cycle at which the oldest outbox request becomes visible to
    /// [`Self::pop_request`], or `None` when the outbox is empty.
    /// Event-horizon accessor for skip-ahead; a rejected request handed
    /// back via [`Self::unpop_request`] reports `ready_at` 0, so a
    /// retry pending on DRAM queue space pins the horizon to the next
    /// cycle.
    pub fn next_request_ready_at(&self) -> Option<CpuCycle> {
        self.outbox.front().map(|e| e.ready_at)
    }

    /// Occupied shared-L2 MSHR entries — snapshotted by the
    /// forward-progress watchdog to show how full the miss machinery
    /// was at the moment of a livelock.
    pub fn l2_mshr_occupancy(&self) -> usize {
        self.l2_mshr.len()
    }

    /// Handles a DRAM completion. Returns one [`CacheCompletion`] for
    /// every core access that this fill satisfies.
    pub fn dram_completed(&mut self, req: &MemRequest, now: CpuCycle) -> Vec<CacheCompletion> {
        if req.kind == AccessKind::Write {
            return Vec::new();
        }
        let line_addr = req.addr;
        // Install into L2 (evicting as needed, enforcing inclusion).
        let (evicted, line) = self.l2.insert(line_addr);
        line.prefetched = req.kind == AccessKind::Prefetch;
        line.sharers = 0;
        if let Some(ev) = evicted {
            let sharers = ev.sharers;
            let mut dirty = ev.dirty;
            // Inclusion: kick the victim out of all L1s; collect dirt.
            let halves = self.cfg.l2_line / self.cfg.l1_line;
            for c in 0..self.cfg.num_cores {
                if sharers & (1 << c) == 0 {
                    continue;
                }
                for h in 0..halves {
                    if let Some(gone) = self.l1d[c].invalidate(ev.addr + h * self.cfg.l1_line) {
                        self.stats.invalidations += 1;
                        dirty |= gone.dirty;
                    }
                }
            }
            if dirty {
                self.emit_writeback(ev.addr, req.core);
            }
        }
        // Satisfy waiting accesses.
        let Some((targets, _wants_exclusive)) = self.l2_mshr.complete(line_addr) else {
            return Vec::new();
        };
        let done = now + self.cfg.fill_latency;
        let mut completions = Vec::new();
        for target in targets {
            let Some(info) = self.info.get(&target.token).copied() else {
                continue;
            };
            // Directory update + L1 fill for the requesting core.
            {
                let line = self.l2.peek_mut(line_addr).expect("just inserted");
                if info.is_write {
                    let sharers = line.sharers;
                    line.sharers = 1 << info.core.index();
                    line.dirty = true;
                    if sharers & !(1 << info.core.index()) != 0 {
                        self.invalidate_l1_copies(line_addr, sharers, Some(info.core));
                    }
                } else {
                    line.sharers |= 1 << info.core.index();
                }
            }
            self.fill_l1(info.core, info.addr, info.is_write);
            // Wake everything merged behind this L1 line.
            if let Some((l1_targets, _)) = self.l1_mshr[info.core.index()].complete(info.addr) {
                for lt in l1_targets {
                    if let Some(i) = self.info.remove(&lt.token) {
                        let latency = done - i.start;
                        if i.crit.is_critical() {
                            self.stats.miss_latency_critical.record(latency);
                        } else {
                            self.stats.miss_latency_noncritical.record(latency);
                        }
                        completions.push(CacheCompletion {
                            core: i.core,
                            token: AccessToken(lt.token),
                            done,
                        });
                    }
                }
            }
        }
        completions
    }
}

impl critmem_common::Snapshot for CacheHierarchy {
    /// Serializes every mutable field; the geometry (`cfg`) is supplied
    /// by the constructor on restore. The in-flight `info` map is
    /// encoded sorted by token for determinism; the outbox and MSHR
    /// files keep their in-memory order (it is architectural state).
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        for l1 in &self.l1d {
            l1.save_state(w);
        }
        for m in &self.l1_mshr {
            m.save_state(w);
        }
        self.l2.save_state(w);
        self.l2_mshr.save_state(w);
        if let Some(pf) = &self.prefetcher {
            w.put_bool(true);
            pf.save_state(w);
        } else {
            w.put_bool(false);
        }
        w.put_u32(self.outbox.len() as u32);
        for e in &self.outbox {
            e.req.encode(w);
            w.put_u64(e.ready_at);
        }
        let mut tokens: Vec<u64> = self.info.keys().copied().collect();
        tokens.sort_unstable();
        w.put_u32(tokens.len() as u32);
        for t in tokens {
            let i = &self.info[&t];
            w.put_u64(t);
            w.put_u64(i.addr);
            w.put_bool(i.is_write);
            w.put_u64(i.crit.magnitude());
            w.put_u64(i.start);
            w.put_u8(i.core.0);
        }
        w.put_u64(self.next_token);
        w.put_u64(self.next_req);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        for l1 in &mut self.l1d {
            l1.load_state(r)?;
        }
        for m in &mut self.l1_mshr {
            m.load_state(r)?;
        }
        self.l2.load_state(r)?;
        self.l2_mshr.load_state(r)?;
        let has_pf = r.get_bool()?;
        match (&mut self.prefetcher, has_pf) {
            (Some(pf), true) => pf.load_state(r)?,
            (None, false) => {}
            (pf, _) => {
                return Err(critmem_common::codec::CodecError {
                    message: format!(
                        "prefetcher presence mismatch: snapshot {has_pf}, config {}",
                        pf.is_some()
                    ),
                    offset: r.position(),
                })
            }
        }
        self.outbox.clear();
        for _ in 0..r.get_u32()? {
            let req = MemRequest::decode(r)?;
            let ready_at = r.get_u64()?;
            self.outbox.push_back(OutboxEntry { req, ready_at });
        }
        self.info.clear();
        for _ in 0..r.get_u32()? {
            let token = r.get_u64()?;
            let addr = r.get_u64()?;
            let is_write = r.get_bool()?;
            let crit = Criticality::ranked(r.get_u64()?);
            let start = r.get_u64()?;
            let core = CoreId(r.get_u8()?);
            self.info.insert(
                token,
                AccessInfo {
                    addr,
                    is_write,
                    crit,
                    start,
                    core,
                },
            );
        }
        self.next_token = r.get_u64()?;
        self.next_req = r.get_u64()?;
        self.stats = HierarchyStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(cores: usize) -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::paper_baseline(cores))
    }

    fn load(h: &mut CacheHierarchy, core: u8, addr: u64, now: u64) -> AccessOutcome {
        h.access(
            CoreId(core),
            addr,
            CacheAccessKind::Load,
            Criticality::non_critical(),
            now,
        )
    }

    fn drain_and_complete(h: &mut CacheHierarchy, now: u64) -> Vec<CacheCompletion> {
        let mut out = Vec::new();
        while let Some(req) = h.pop_request(now) {
            if req.kind != AccessKind::Write {
                out.extend(h.dram_completed(&req, now));
            }
        }
        out
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let mut h = hierarchy(1);
        let out = load(&mut h, 0, 0x1000, 0);
        assert!(matches!(out, AccessOutcome::Pending(_)));
        let completions = drain_and_complete(&mut h, 100);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].done, 100 + 8); // fill latency
        assert_eq!(completions[0].core, CoreId(0));
        // Second access: L1 hit.
        let out = load(&mut h, 0, 0x1000, 200);
        assert_eq!(out, AccessOutcome::Done(200 + 3));
    }

    #[test]
    fn l2_hit_after_other_core_fetched() {
        let mut h = hierarchy(2);
        load(&mut h, 0, 0x1000, 0);
        drain_and_complete(&mut h, 100);
        // Core 1 misses L1 but hits L2.
        let out = load(&mut h, 1, 0x1000, 200);
        assert_eq!(out, AccessOutcome::Done(200 + 32));
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn merged_accesses_complete_together() {
        let mut h = hierarchy(1);
        let a = load(&mut h, 0, 0x1000, 0);
        let b = load(&mut h, 0, 0x1008, 1); // same L1 line
        assert!(matches!(a, AccessOutcome::Pending(_)));
        assert!(matches!(b, AccessOutcome::Pending(_)));
        let completions = drain_and_complete(&mut h, 100);
        assert_eq!(completions.len(), 2);
    }

    #[test]
    fn two_l1_lines_one_l2_line() {
        let mut h = hierarchy(1);
        let a = load(&mut h, 0, 0x1000, 0);
        let b = load(&mut h, 0, 0x1020, 1); // other half of the 64B line
        assert!(matches!(a, AccessOutcome::Pending(_)));
        assert!(matches!(b, AccessOutcome::Pending(_)));
        // Only one DRAM request is generated.
        let mut reqs = 0;
        let mut completions = Vec::new();
        while let Some(req) = h.pop_request(50) {
            reqs += 1;
            completions.extend(h.dram_completed(&req, 100));
        }
        assert_eq!(reqs, 1);
        assert_eq!(completions.len(), 2);
        // Both halves now hit in L1.
        assert!(matches!(
            load(&mut h, 0, 0x1000, 200),
            AccessOutcome::Done(_)
        ));
        assert!(matches!(
            load(&mut h, 0, 0x1020, 200),
            AccessOutcome::Done(_)
        ));
    }

    #[test]
    fn store_to_shared_line_invalidates_other_l1() {
        let mut h = hierarchy(2);
        // Both cores read the line.
        load(&mut h, 0, 0x1000, 0);
        drain_and_complete(&mut h, 50);
        load(&mut h, 1, 0x1000, 100); // L2 hit, fills core 1's L1
                                      // Core 0 stores: upgrade should invalidate core 1's copy.
        let out = h.access(
            CoreId(0),
            0x1000,
            CacheAccessKind::Store,
            Criticality::non_critical(),
            200,
        );
        match out {
            AccessOutcome::Done(t) => assert_eq!(t, 200 + 3 + 12),
            other => panic!("expected upgraded store hit, got {other:?}"),
        }
        assert_eq!(h.stats().upgrades, 1);
        assert!(h.stats().invalidations >= 1);
        // Core 1 now misses in L1 (hits L2).
        let out = load(&mut h, 1, 0x1000, 300);
        assert_eq!(out, AccessOutcome::Done(300 + 32));
    }

    #[test]
    fn store_miss_fetches_exclusive() {
        let mut h = hierarchy(2);
        let out = h.access(
            CoreId(0),
            0x2000,
            CacheAccessKind::Store,
            Criticality::non_critical(),
            0,
        );
        assert!(matches!(out, AccessOutcome::Pending(_)));
        drain_and_complete(&mut h, 100);
        // Subsequent store hits without an upgrade.
        let out = h.access(
            CoreId(0),
            0x2000,
            CacheAccessKind::Store,
            Criticality::non_critical(),
            200,
        );
        assert_eq!(out, AccessOutcome::Done(200 + 3));
        assert_eq!(h.stats().upgrades, 0);
    }

    #[test]
    fn criticality_rides_the_memory_request() {
        let mut h = hierarchy(1);
        h.access(
            CoreId(0),
            0x3000,
            CacheAccessKind::Load,
            Criticality::ranked(77),
            0,
        );
        let req = h.pop_request(100).expect("request emitted");
        assert_eq!(req.crit.magnitude(), 77);
        assert_eq!(req.kind, AccessKind::Read);
    }

    #[test]
    fn miss_latency_split_by_criticality() {
        let mut h = hierarchy(1);
        h.access(
            CoreId(0),
            0x3000,
            CacheAccessKind::Load,
            Criticality::ranked(9),
            0,
        );
        h.access(
            CoreId(0),
            0x9000,
            CacheAccessKind::Load,
            Criticality::non_critical(),
            0,
        );
        while let Some(req) = h.pop_request(1_000) {
            h.dram_completed(&req, 500);
        }
        assert_eq!(h.stats().miss_latency_critical.count(), 1);
        assert_eq!(h.stats().miss_latency_noncritical.count(), 1);
        assert_eq!(h.stats().miss_latency_critical.mean(), Some(508.0));
    }

    #[test]
    fn l1_mshr_full_returns_retry() {
        let mut cfg = HierarchyConfig::paper_baseline(1);
        cfg.l1_mshrs = 2;
        let mut h = CacheHierarchy::new(cfg);
        assert!(matches!(
            load(&mut h, 0, 0x0000, 0),
            AccessOutcome::Pending(_)
        ));
        assert!(matches!(
            load(&mut h, 0, 0x4000, 0),
            AccessOutcome::Pending(_)
        ));
        assert_eq!(load(&mut h, 0, 0x8000, 0), AccessOutcome::Retry);
    }

    #[test]
    fn l2_mshr_full_returns_retry_and_releases_l1_entry() {
        let mut cfg = HierarchyConfig::paper_baseline(1);
        cfg.l2_mshrs = 1;
        let mut h = CacheHierarchy::new(cfg);
        assert!(matches!(
            load(&mut h, 0, 0x0000, 0),
            AccessOutcome::Pending(_)
        ));
        assert_eq!(load(&mut h, 0, 0x4000, 0), AccessOutcome::Retry);
        // After the first completes, the retry succeeds.
        drain_and_complete(&mut h, 100);
        assert!(matches!(
            load(&mut h, 0, 0x4000, 200),
            AccessOutcome::Pending(_)
        ));
    }

    #[test]
    fn prefetcher_emits_lower_priority_reads() {
        let mut cfg = HierarchyConfig::paper_baseline(1);
        cfg.prefetch = Some(PrefetchConfig::default());
        let mut h = CacheHierarchy::new(cfg);
        load(&mut h, 0, 0, 0);
        load(&mut h, 0, 64, 1);
        let mut kinds = Vec::new();
        while let Some(req) = h.pop_request(100) {
            kinds.push(req.kind);
        }
        assert!(kinds.contains(&AccessKind::Prefetch));
        assert_eq!(kinds.iter().filter(|k| **k == AccessKind::Read).count(), 2);
        assert!(h.stats().prefetches_sent >= 1);
    }

    #[test]
    fn prefetched_line_hit_counts_useful() {
        let mut cfg = HierarchyConfig::paper_baseline(1);
        cfg.prefetch = Some(PrefetchConfig::default());
        let mut h = CacheHierarchy::new(cfg);
        load(&mut h, 0, 0, 0);
        load(&mut h, 0, 64, 1);
        drain_and_complete(&mut h, 100);
        // Line 128 was prefetched; demanding it is an L2 hit.
        let out = load(&mut h, 0, 128, 200);
        assert!(matches!(out, AccessOutcome::Done(_)));
        assert_eq!(h.stats().prefetch_useful, 1);
    }

    #[test]
    fn outbox_respects_issue_latency() {
        let mut h = hierarchy(1);
        load(&mut h, 0, 0x1000, 100);
        assert!(h.pop_request(100).is_none(), "request visible too early");
        assert!(h.pop_request(100 + 12).is_some());
    }

    #[test]
    fn unpop_preserves_order() {
        let mut h = hierarchy(1);
        load(&mut h, 0, 0x1000, 0);
        load(&mut h, 0, 0x9000, 0);
        let first = h.pop_request(50).unwrap();
        let id = first.id;
        h.unpop_request(first);
        assert_eq!(h.pop_request(50).unwrap().id, id);
    }
}
