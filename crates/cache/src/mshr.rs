//! Miss-status holding registers (MSHRs).
//!
//! Each entry tracks one outstanding line fill and the set of waiting
//! *targets* (the accesses merged onto it). Table 1/3 configure 16
//! entries per L1 and 64 for the shared L2 (halved to 32 for the
//! multiprogrammed runs).

use critmem_common::PhysAddr;

/// Result of attempting to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated — the caller must send the fill
    /// request downstream.
    NewMiss,
    /// An entry for the line already existed — the access was merged.
    Merged,
    /// No free entry; the access must be retried later.
    Full,
}

/// One waiting access. The meaning of the fields is up to the caller
/// (the hierarchy stores its token and write intent here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrTarget {
    /// Caller-defined token identifying the stalled access.
    pub token: u64,
    /// Whether the access needs write (exclusive) permission.
    pub is_write: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    line_addr: PhysAddr,
    targets: Vec<MshrTarget>,
    /// Whether any merged target needs exclusive permission.
    wants_exclusive: bool,
}

/// A file of MSHR entries for one cache.
///
/// # Examples
///
/// ```
/// use critmem_cache::{MshrFile, MshrOutcome, MshrTarget};
/// let mut m = MshrFile::new(2, 64);
/// let t = MshrTarget { token: 1, is_write: false };
/// assert_eq!(m.register(0x1000, t), MshrOutcome::NewMiss);
/// assert_eq!(m.register(0x1010, t), MshrOutcome::Merged); // same line
/// let (targets, _) = m.complete(0x1000).unwrap();
/// assert_eq!(targets.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    line_bytes: u64,
    /// Peak simultaneous occupancy (for reports).
    peak: usize,
    merges: u64,
    rejections: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries tracking `line_bytes`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `line_bytes` is not a power of
    /// two.
    pub fn new(capacity: usize, line_bytes: u64) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            line_bytes,
            peak: 0,
            merges: 0,
            rejections: 0,
        }
    }

    #[inline]
    fn line(&self, addr: PhysAddr) -> PhysAddr {
        addr & !(self.line_bytes - 1)
    }

    /// Registers a missing access. See [`MshrOutcome`].
    pub fn register(&mut self, addr: PhysAddr, target: MshrTarget) -> MshrOutcome {
        let line = self.line(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line_addr == line) {
            e.targets.push(target);
            e.wants_exclusive |= target.is_write;
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            self.rejections += 1;
            return MshrOutcome::Full;
        }
        self.entries.push(Entry {
            line_addr: line,
            targets: vec![target],
            wants_exclusive: target.is_write,
        });
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::NewMiss
    }

    /// Registers a miss with no waiting target (prefetches).
    pub fn register_prefetch(&mut self, addr: PhysAddr) -> MshrOutcome {
        let line = self.line(addr);
        if self.entries.iter().any(|e| e.line_addr == line) {
            return MshrOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            self.rejections += 1;
            return MshrOutcome::Full;
        }
        self.entries.push(Entry {
            line_addr: line,
            targets: Vec::new(),
            wants_exclusive: false,
        });
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::NewMiss
    }

    /// Completes the fill for `addr`'s line: frees the entry and
    /// returns `(waiting targets, wants_exclusive)`. Returns `None` if
    /// no entry matches (e.g. a spurious completion).
    pub fn complete(&mut self, addr: PhysAddr) -> Option<(Vec<MshrTarget>, bool)> {
        let line = self.line(addr);
        let pos = self.entries.iter().position(|e| e.line_addr == line)?;
        let e = self.entries.swap_remove(pos);
        Some((e.targets, e.wants_exclusive))
    }

    /// Whether an outstanding fill exists for `addr`'s line.
    pub fn pending(&self, addr: PhysAddr) -> bool {
        let line = self.line(addr);
        self.entries.iter().any(|e| e.line_addr == line)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Accesses merged onto existing entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Accesses rejected because the file was full.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

impl critmem_common::Snapshot for MshrFile {
    /// Entry order is architectural state (`complete` uses
    /// `swap_remove`), so entries are serialized verbatim.
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_u64(e.line_addr);
            w.put_u32(e.targets.len() as u32);
            for t in &e.targets {
                w.put_u64(t.token);
                w.put_bool(t.is_write);
            }
            w.put_bool(e.wants_exclusive);
        }
        w.put_u64(self.peak as u64);
        w.put_u64(self.merges);
        w.put_u64(self.rejections);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n > self.capacity {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "snapshot holds {n} MSHR entries, capacity is {}",
                    self.capacity
                ),
                offset: r.position(),
            });
        }
        self.entries.clear();
        for _ in 0..n {
            let line_addr = r.get_u64()?;
            let targets = (0..r.get_u32()? as usize)
                .map(|_| {
                    Ok(MshrTarget {
                        token: r.get_u64()?,
                        is_write: r.get_bool()?,
                    })
                })
                .collect::<Result<_, critmem_common::codec::CodecError>>()?;
            let wants_exclusive = r.get_bool()?;
            self.entries.push(Entry {
                line_addr,
                targets,
                wants_exclusive,
            });
        }
        self.peak = r.get_u64()? as usize;
        self.merges = r.get_u64()?;
        self.rejections = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(token: u64) -> MshrTarget {
        MshrTarget {
            token,
            is_write: false,
        }
    }

    #[test]
    fn allocates_then_merges() {
        let mut m = MshrFile::new(4, 64);
        assert_eq!(m.register(0x100, t(1)), MshrOutcome::NewMiss);
        assert_eq!(m.register(0x120, t(2)), MshrOutcome::Merged);
        assert_eq!(m.len(), 1);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_rejects_new_lines_but_merges_existing() {
        let mut m = MshrFile::new(2, 64);
        m.register(0x000, t(1));
        m.register(0x040, t(2));
        assert_eq!(m.register(0x080, t(3)), MshrOutcome::Full);
        assert_eq!(m.register(0x000, t(4)), MshrOutcome::Merged);
        assert_eq!(m.rejections(), 1);
        assert!(m.is_full());
    }

    #[test]
    fn complete_returns_all_targets_in_order() {
        let mut m = MshrFile::new(2, 64);
        m.register(0x100, t(1));
        m.register(0x110, t(2));
        m.register(
            0x130,
            MshrTarget {
                token: 3,
                is_write: true,
            },
        );
        let (targets, excl) = m.complete(0x100).unwrap();
        assert_eq!(
            targets.iter().map(|x| x.token).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(excl, "merged write must request exclusive");
        assert!(m.is_empty());
        assert!(m.complete(0x100).is_none());
    }

    #[test]
    fn prefetch_entries_carry_no_targets() {
        let mut m = MshrFile::new(2, 64);
        assert_eq!(m.register_prefetch(0x200), MshrOutcome::NewMiss);
        assert_eq!(m.register_prefetch(0x200), MshrOutcome::Merged);
        let (targets, excl) = m.complete(0x200).unwrap();
        assert!(targets.is_empty());
        assert!(!excl);
    }

    #[test]
    fn demand_merges_onto_prefetch() {
        let mut m = MshrFile::new(2, 64);
        m.register_prefetch(0x200);
        assert_eq!(m.register(0x200, t(9)), MshrOutcome::Merged);
        let (targets, _) = m.complete(0x200).unwrap();
        assert_eq!(targets.len(), 1);
    }

    #[test]
    fn pending_tracks_lines() {
        let mut m = MshrFile::new(2, 64);
        m.register(0x100, t(1));
        assert!(m.pending(0x13F));
        assert!(!m.pending(0x140));
    }

    #[test]
    fn peak_occupancy() {
        let mut m = MshrFile::new(4, 64);
        m.register(0x000, t(1));
        m.register(0x040, t(2));
        m.complete(0x000);
        m.complete(0x040);
        assert_eq!(m.peak(), 2);
        assert!(m.is_empty());
    }
}
