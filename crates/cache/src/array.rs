//! A set-associative cache array with true-LRU replacement.
//!
//! Used for both the per-core 32 kB L1s (32 B lines) and the shared
//! 4 MB L2 (64 B lines, 8-way) of Tables 1 and 3. Lines carry the
//! metadata the hierarchy needs: dirty, exclusive (for the MESI-style
//! store upgrade), sharer bitmask (L2 directory), and a prefetched
//! marker for prefetcher accounting.

use critmem_common::PhysAddr;

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Full line-aligned address (tag + index re-combined).
    pub addr: PhysAddr,
    /// Valid bit.
    pub valid: bool,
    /// Dirty (modified) bit.
    pub dirty: bool,
    /// Exclusive/modified permission (L1 lines; set when filled for a
    /// store or upgraded).
    pub exclusive: bool,
    /// Directory sharer bitmask (L2 lines; bit *i* = core *i* may hold
    /// a copy).
    pub sharers: u8,
    /// Line was brought in by the prefetcher and not yet demanded.
    pub prefetched: bool,
    lru: u64,
}

const INVALID: Line = Line {
    addr: 0,
    valid: false,
    dirty: false,
    exclusive: false,
    sharers: 0,
    prefetched: false,
    lru: 0,
};

/// A victim evicted by [`CacheArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub addr: PhysAddr,
    /// Whether it held modified data (needs a write-back).
    pub dirty: bool,
    /// Sharer bitmask at eviction (for inclusion enforcement).
    pub sharers: u8,
}

/// Set-associative, true-LRU cache array.
///
/// # Examples
///
/// ```
/// use critmem_cache::CacheArray;
/// let mut c = CacheArray::new(32 * 1024, 4, 32);
/// assert!(c.probe(0x1000).is_none());
/// c.insert(0x1000);
/// assert!(c.probe(0x1000).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    line_bytes: u64,
    clock: u64,
    /// Hit/miss counters.
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Creates an array of `size_bytes` capacity with `ways`
    /// associativity and `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (set count must be a
    /// positive power of two).
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "associativity must be nonzero");
        let lines_total = size_bytes / line_bytes;
        let sets = (lines_total as usize) / ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        CacheArray {
            lines: vec![INVALID; sets * ways],
            sets,
            ways,
            line_bytes,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Aligns an address down to its line.
    #[inline]
    pub fn line_addr(&self, addr: PhysAddr) -> PhysAddr {
        addr & !(self.line_bytes - 1)
    }

    #[inline]
    fn set_of(&self, addr: PhysAddr) -> usize {
        ((addr / self.line_bytes) as usize) & (self.sets - 1)
    }

    /// Looks up `addr`; on a hit returns the line (LRU updated) and
    /// counts a hit, otherwise counts a miss.
    pub fn probe(&mut self, addr: PhysAddr) -> Option<&mut Line> {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        self.clock += 1;
        let clock = self.clock;
        let base = set * self.ways;
        let found = self.lines[base..base + self.ways]
            .iter()
            .position(|l| l.valid && l.addr == line_addr);
        match found {
            Some(w) => {
                self.hits += 1;
                let line = &mut self.lines[base + w];
                line.lru = clock;
                Some(line)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up without counting statistics or touching LRU.
    pub fn peek(&self, addr: PhysAddr) -> Option<&Line> {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .find(|l| l.valid && l.addr == line_addr)
    }

    /// Mutable lookup without statistics (for directory updates).
    pub fn peek_mut(&mut self, addr: PhysAddr) -> Option<&mut Line> {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter_mut()
            .find(|l| l.valid && l.addr == line_addr)
    }

    /// Installs `addr`, evicting the LRU way if the set is full.
    /// Returns the evicted victim (if any, and if it was valid) and a
    /// mutable reference to the new line for metadata setup.
    pub fn insert(&mut self, addr: PhysAddr) -> (Option<Evicted>, &mut Line) {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        self.clock += 1;
        let clock = self.clock;
        let base = set * self.ways;
        // Re-use an existing copy or an invalid way if present.
        let slot = {
            let ways = &self.lines[base..base + self.ways];
            ways.iter()
                .position(|l| l.valid && l.addr == line_addr)
                .or_else(|| ways.iter().position(|l| !l.valid))
                .unwrap_or_else(|| {
                    ways.iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .map(|(i, _)| i)
                        .expect("nonzero associativity")
                })
        };
        let line = &mut self.lines[base + slot];
        let evicted = if line.valid && line.addr != line_addr {
            Some(Evicted {
                addr: line.addr,
                dirty: line.dirty,
                sharers: line.sharers,
            })
        } else {
            None
        };
        if !(line.valid && line.addr == line_addr) {
            *line = Line {
                addr: line_addr,
                valid: true,
                ..INVALID
            };
        }
        line.lru = clock;
        (evicted, line)
    }

    /// Invalidates `addr` if present; returns the line's final state.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<Line> {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(addr);
        let base = set * self.ways;
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.addr == line_addr {
                let out = *l;
                l.valid = false;
                return Some(out);
            }
        }
        None
    }

    /// (hits, misses) counted by [`Self::probe`].
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate over probes so far (0 if never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl critmem_common::Snapshot for CacheArray {
    /// Geometry comes from the constructor; the captured state is every
    /// line's metadata plus the LRU clock and hit/miss counters.
    fn save_state(&self, w: &mut critmem_common::codec::ByteWriter) {
        w.put_u32(self.lines.len() as u32);
        for l in &self.lines {
            w.put_u64(l.addr);
            w.put_bool(l.valid);
            w.put_bool(l.dirty);
            w.put_bool(l.exclusive);
            w.put_u8(l.sharers);
            w.put_bool(l.prefetched);
            w.put_u64(l.lru);
        }
        w.put_u64(self.clock);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }

    fn load_state(
        &mut self,
        r: &mut critmem_common::codec::ByteReader<'_>,
    ) -> Result<(), critmem_common::codec::CodecError> {
        let n = r.get_u32()? as usize;
        if n != self.lines.len() {
            return Err(critmem_common::codec::CodecError {
                message: format!(
                    "cache array holds {} lines, snapshot has {n}",
                    self.lines.len()
                ),
                offset: r.position(),
            });
        }
        for l in &mut self.lines {
            l.addr = r.get_u64()?;
            l.valid = r.get_bool()?;
            l.dirty = r.get_bool()?;
            l.exclusive = r.get_bool()?;
            l.sharers = r.get_u8()?;
            l.prefetched = r.get_bool()?;
            l.lru = r.get_u64()?;
        }
        self.clock = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = CacheArray::new(1024, 2, 64);
        assert!(c.probe(0x40).is_none());
        c.insert(0x40);
        assert!(c.probe(0x40).is_some());
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = CacheArray::new(1024, 2, 64);
        c.insert(0x40);
        assert!(c.probe(0x40 + 63).is_some());
        assert!(c.probe(0x40 + 64).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, line 64, 1024 B => 8 sets. Addresses 0, 512, 1024 share set 0.
        let mut c = CacheArray::new(1024, 2, 64);
        c.insert(0);
        c.insert(512);
        c.probe(0); // touch 0 so 512 is LRU
        let (ev, _) = c.insert(1024);
        assert_eq!(ev.unwrap().addr, 512);
        assert!(c.peek(0).is_some());
        assert!(c.peek(512).is_none());
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = CacheArray::new(1024, 2, 64);
        {
            let (_, l) = c.insert(0);
            l.dirty = true;
        }
        c.insert(512);
        let (ev, _) = c.insert(1024);
        let ev = ev.unwrap();
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn reinsert_does_not_evict_self() {
        let mut c = CacheArray::new(1024, 2, 64);
        c.insert(0);
        let (ev, _) = c.insert(0);
        assert!(ev.is_none());
    }

    #[test]
    fn reinsert_preserves_metadata() {
        let mut c = CacheArray::new(1024, 2, 64);
        {
            let (_, l) = c.insert(0);
            l.dirty = true;
            l.sharers = 0b101;
        }
        let (_, l) = c.insert(0);
        assert!(l.dirty, "re-insert must not clear dirty");
        assert_eq!(l.sharers, 0b101);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = CacheArray::new(1024, 2, 64);
        {
            let (_, l) = c.insert(0x80);
            l.dirty = true;
        }
        let gone = c.invalidate(0x80).unwrap();
        assert!(gone.dirty);
        assert!(c.peek(0x80).is_none());
        assert!(c.invalidate(0x80).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = CacheArray::new(1000, 2, 48);
    }

    /// Seeded property sweep: the cache never holds more distinct
    /// lines than its capacity, and a probe immediately after insert
    /// always hits.
    #[test]
    fn insert_probe_coherent() {
        let mut rng = critmem_common::SmallRng::seed_from_u64(0xCAC4E);
        for _ in 0..64 {
            let n = rng.gen_range(1..200);
            let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 20)).collect();
            let mut c = CacheArray::new(4096, 4, 64);
            for &a in &addrs {
                c.insert(a);
                assert!(c.peek(a).is_some());
            }
            let valid = c.lines.iter().filter(|l| l.valid).count();
            assert!(valid <= 4096 / 64);
        }
    }

    /// Within one set, inserting ways+1 distinct lines evicts exactly
    /// one, for every set-aliasing stride.
    #[test]
    fn eviction_count_is_exact() {
        for set_jump in 1u64..32 {
            let mut c = CacheArray::new(8192, 4, 64);
            let stride = 64 * c.sets() as u64 * set_jump; // same set
            let mut evictions = 0;
            for i in 0..5u64 {
                let (ev, _) = c.insert(i * stride);
                if ev.is_some() {
                    evictions += 1;
                }
            }
            assert_eq!(evictions, 1, "set_jump={set_jump}");
        }
    }
}
