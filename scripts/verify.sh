#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, trace capture/replay
# smoke test, and formatting. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
build_start=$SECONDS
cargo build --release
echo "release build took $((SECONDS - build_start))s"

echo "== cargo test -q"
cargo test -q

echo "== trace capture/replay smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/repro --scale quick trace capture swim "$tmp/swim.cmtr"
./target/release/repro trace replay "$tmp/swim.cmtr" --sched fr-fcfs
./target/release/repro trace replay "$tmp/swim.cmtr" --sched casras-crit

echo "== parallel engine smoke test (--jobs 2 must match serial output)"
./target/release/repro --scale quick --jobs 1 fig10 > "$tmp/fig10.serial" 2>/dev/null
./target/release/repro --scale quick --jobs 2 fig10 > "$tmp/fig10.jobs2" 2>/dev/null
diff "$tmp/fig10.serial" "$tmp/fig10.jobs2"

echo "== cargo fmt --check (fails on rustfmt drift)"
cargo fmt --check

echo "verify: OK"
