#!/usr/bin/env bash
# Tier-1 verification: build, full test suite (unit + doc tests), docs,
# trace capture/replay, checkpoint warm-start, and stats-export smoke
# tests, and formatting. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
build_start=$SECONDS
cargo build --release
echo "release build took $((SECONDS - build_start))s"

echo "== cargo test -q (includes doc tests)"
cargo test -q

echo "== cargo test --doc (explicit gate: Session/Checkpoint examples)"
cargo test --doc -q

echo "== cargo clippy --all-targets -D warnings (lint gate)"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors; docs cannot rot)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== trace capture/replay smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/repro --scale quick trace capture swim "$tmp/swim.cmtr"
./target/release/repro trace replay "$tmp/swim.cmtr" --sched fr-fcfs
./target/release/repro trace replay "$tmp/swim.cmtr" --sched casras-crit

echo "== streaming pipeline smoke test (capture -> profile -> synth)"
# Stream the capture back (constant chunk memory), fit a CMPF traffic
# profile, and synthesize a 1M-request long-horizon run with windowed
# online stats.
./target/release/repro trace stream "$tmp/swim.cmtr" --sched fr-fcfs \
  | tee "$tmp/stream.out"
grep -q 'peak resident chunk memory 10756 B' "$tmp/stream.out"
./target/release/repro trace profile "$tmp/swim.cmtr" "$tmp/swim.cmpf"
./target/release/repro trace synth "$tmp/swim.cmpf" --requests 1000000 \
  --sched casras-crit --max-outstanding 64 --epoch 1000000 --window 32 \
  | tee "$tmp/synth.out"
grep -q 'synthesized 1000000 requests' "$tmp/synth.out"
grep -q 'windowed online stats' "$tmp/synth.out"
# The recorded bench block must carry the long-horizon acceptance line
# (regenerate with `cargo bench --bench engine`).
grep -q '"streaming"' BENCH_engine.json
grep -q '"requests_per_sec"' BENCH_engine.json
grep -q '"acceptance": "requests_per_sec measured over >= 10000000 synthesized requests; peak_resident_chunk_bytes <= chunk_bytes"' BENCH_engine.json

echo "== parallel engine smoke test (--jobs 2 must match serial output)"
./target/release/repro --scale quick --jobs 1 fig10 > "$tmp/fig10.serial" 2>/dev/null
./target/release/repro --scale quick --jobs 2 fig10 > "$tmp/fig10.jobs2" 2>/dev/null
diff "$tmp/fig10.serial" "$tmp/fig10.jobs2"

echo "== sharded kernel smoke test (--shards 2 / --no-skip-ahead match serial)"
# Per-tick channel sharding and event-driven skip-ahead change
# wall-clock time only; figure output must be byte-identical.
./target/release/repro --scale quick --jobs 1 --shards 2 fig10 > "$tmp/fig10.shards2" 2>/dev/null
diff "$tmp/fig10.serial" "$tmp/fig10.shards2"
./target/release/repro --scale quick --jobs 1 --no-skip-ahead fig10 > "$tmp/fig10.noskip" 2>/dev/null
diff "$tmp/fig10.serial" "$tmp/fig10.noskip"
# The recorded bench blocks must exist with their acceptance lines
# (regenerate with `cargo bench --bench engine`).
grep -q '"skip_ahead"' BENCH_engine.json
grep -q '"sharded"' BENCH_engine.json
grep -q '"acceptance": "speedup >= 3 on the DRAM-bound idle-heavy probe; stats byte-identical (asserted here and in tests/sharded_kernel.rs)"' BENCH_engine.json
grep -q '"acceptance": "sharded_speedup > 1 when host_cpus > 1"' BENCH_engine.json

echo "== checkpoint warm-start smoke test"
# Round-trip a CMCK artifact through the CLI, then check that a
# warm-started sweep is deterministic across worker counts.
./target/release/repro --scale quick checkpoint save swim "$tmp/swim.cmck" --cycles 20000
./target/release/repro --scale quick checkpoint restore "$tmp/swim.cmck" swim \
  --sched casras-crit --pred maxstalltime
./target/release/repro --scale quick --jobs 1 --warm-cycles 20000 fig10 > "$tmp/fig10.warm1" 2>/dev/null
./target/release/repro --scale quick --jobs 2 --warm-cycles 20000 fig10 > "$tmp/fig10.warm2" 2>/dev/null
diff "$tmp/fig10.warm1" "$tmp/fig10.warm2"

echo "== stats export smoke test (JSONL, serial == --jobs 2)"
./target/release/repro --scale quick --jobs 1 stats swim --epoch 20000 > "$tmp/stats.serial" 2>/dev/null
./target/release/repro --scale quick --jobs 2 stats swim --epoch 20000 > "$tmp/stats.jobs2" 2>/dev/null
diff "$tmp/stats.serial" "$tmp/stats.jobs2"
head -c 120 "$tmp/stats.serial" | grep -q '"type":"export"'

echo "== fairness frontier smoke test (table + export, deterministic)"
# One bundle through the scheduler zoo: the table must list BLISS and
# MetaSwitch, the JSONL export block must follow, and stdout must be
# byte-identical across --jobs, --shards, and --no-skip-ahead.
./target/release/repro --scale quick --jobs 1 fairness AELV > "$tmp/fair.serial" 2>/dev/null
grep -q 'Performance-fairness frontier' "$tmp/fair.serial"
grep -q '^BLISS ' "$tmp/fair.serial"
grep -q '^MetaSwitch ' "$tmp/fair.serial"
grep -q '"type":"export"' "$tmp/fair.serial"
./target/release/repro --scale quick --jobs 2 fairness AELV > "$tmp/fair.jobs2" 2>/dev/null
diff "$tmp/fair.serial" "$tmp/fair.jobs2"
./target/release/repro --scale quick --jobs 1 --shards 2 fairness AELV > "$tmp/fair.shards2" 2>/dev/null
diff "$tmp/fair.serial" "$tmp/fair.shards2"
./target/release/repro --scale quick --jobs 1 --no-skip-ahead fairness AELV > "$tmp/fair.noskip" 2>/dev/null
diff "$tmp/fair.serial" "$tmp/fair.noskip"

echo "== hetero mix smoke test (table + export, deterministic)"
# A small heterogeneous mix through the scheduler zoo: the table and
# JSONL export must emit, and stdout must be byte-identical across
# --jobs (the engine-knob matrix is covered by the fairness smoke and
# the hetero system/checkpoint tests).
./target/release/repro --scale quick --jobs 1 hetero 'ooo:mcf+stream+bulk' \
  > "$tmp/hetero.serial" 2>/dev/null
grep -q 'Heterogeneous-mix sweep' "$tmp/hetero.serial"
grep -q '^BLISS ' "$tmp/hetero.serial"
grep -q 'QoS violations' "$tmp/hetero.serial"
grep -q '"type":"export"' "$tmp/hetero.serial"
./target/release/repro --scale quick --jobs 2 hetero 'ooo:mcf+stream+bulk' \
  > "$tmp/hetero.jobs2" 2>/dev/null
diff "$tmp/hetero.serial" "$tmp/hetero.jobs2"

echo "== audit smoke test (--audit byte-identical, campaign 100% detection)"
# An audited run must be silent and byte-identical to the unaudited
# baseline; the scheduler certification and the fault-injection
# campaign must report zero silent outcomes; a single injected fault
# must surface with its documented exit code (4 = audit violation).
./target/release/repro --scale quick --jobs 1 --audit fig10 > "$tmp/fig10.audit" 2>/dev/null
diff "$tmp/fig10.serial" "$tmp/fig10.audit"
./target/release/repro audit
./target/release/repro audit campaign | tee "$tmp/campaign.out"
grep -q 'faults detected (zero silent outcomes)' "$tmp/campaign.out"
if ./target/release/repro audit inject corrupt-sched@ch0,c5000 \
    > "$tmp/inject.out" 2>/dev/null; then
  echo "audit smoke: corrupt-sched injection was expected to exit non-zero" >&2
  exit 1
else
  rc=$?
fi
if [ "$rc" -ne 4 ]; then
  echo "audit smoke: corrupt-sched exit code was $rc, expected 4" >&2
  exit 1
fi
grep -q 'detected as audit violation' "$tmp/inject.out"

echo "== fault-injection smoke test (isolation + journal resume)"
# Build the harness with the injection hooks armed, wedge one cell of a
# two-figure sweep, and check that (a) the sweep completes with a
# non-zero exit and a failure report, and (b) --resume reproduces the
# clean run's stdout byte for byte.
cargo build --release --features critmem/fault-inject -q
faulty=./target/release/repro
"$faulty" --scale quick --jobs 4 fig4 fig6 > "$tmp/sweep.clean" 2>/dev/null
if CRITMEM_FAULT_PANIC_KEY='mg|CASRAS-Crit|Binary' \
    "$faulty" --scale quick --jobs 4 --journal "$tmp/sweep.cmjr" fig4 fig6 \
    > "$tmp/sweep.faulted" 2>/dev/null; then
  echo "fault-injection smoke: expected a non-zero exit" >&2
  exit 1
fi
grep -q '=== Failed cells ===' "$tmp/sweep.faulted"
"$faulty" --scale quick --jobs 4 --journal "$tmp/sweep.cmjr" --resume fig4 fig6 \
  > "$tmp/sweep.resumed" 2>/dev/null
cmp "$tmp/sweep.clean" "$tmp/sweep.resumed"
# Rebuild without the feature so later runs use the production binary.
cargo build --release -q

echo "== cargo fmt --check (fails on rustfmt drift)"
cargo fmt --check

echo "verify: OK"
