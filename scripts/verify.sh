#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, trace capture/replay
# smoke test, and formatting. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== trace capture/replay smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/repro --scale quick trace capture swim "$tmp/swim.cmtr"
./target/release/repro trace replay "$tmp/swim.cmtr" --sched fr-fcfs
./target/release/repro trace replay "$tmp/swim.cmtr" --sched casras-crit

echo "== cargo fmt --check"
cargo fmt --check

echo "verify: OK"
