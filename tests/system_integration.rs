//! Cross-crate integration tests: end-to-end request flow through
//! cores, caches, every scheduler, and the DDR3 model.

use critmem::{AgentMix, PredictorKind, RunStats, Session, SystemConfig};
use critmem_predict::{CbpMetric, ClptMode, TableSize};
use critmem_sched::{MorseConfig, SchedulerKind, TcmTiebreak};

fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
    Session::new(cfg, workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn small_cfg(instructions: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(instructions);
    cfg.cores = 4;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(4);
    cfg.max_cycles = 200_000_000;
    cfg
}

#[test]
fn every_scheduler_completes_a_parallel_run() {
    let schedulers = [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::CritCasRas,
        SchedulerKind::CasRasCrit,
        SchedulerKind::Ahb,
        SchedulerKind::ParBs { marking_cap: 5 },
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::FrFcfs,
        },
        SchedulerKind::Tcm {
            tiebreak: TcmTiebreak::CritFrFcfs,
        },
        SchedulerKind::Morse(MorseConfig::default()),
        SchedulerKind::Morse(MorseConfig {
            use_criticality: true,
            ..Default::default()
        }),
    ];
    for sched in schedulers {
        let cfg = small_cfg(2_000)
            .with_scheduler(sched)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let stats = run(cfg, &AgentMix::Parallel("mg"));
        assert!(stats.cycles > 0, "{}", sched.name());
        for (i, c) in stats.cores.iter().enumerate() {
            assert!(
                c.committed >= 2_000,
                "{} core {i} under target",
                sched.name()
            );
        }
        // Conservation: every demand L2 miss eventually produced a DRAM
        // read (plus prefetch-free run means reads >= misses is not
        // exact because of MSHR merges; check reads > 0 and no huge
        // mismatch instead).
        let dram_reads: u64 = stats.channels.iter().map(|c| c.reads_completed).sum();
        assert!(dram_reads > 0, "{}", sched.name());
    }
}

#[test]
fn every_predictor_kind_completes() {
    let predictors = [
        PredictorKind::None,
        PredictorKind::cbp64(CbpMetric::Binary),
        PredictorKind::cbp64(CbpMetric::BlockCount),
        PredictorKind::cbp64(CbpMetric::LastStallTime),
        PredictorKind::cbp64(CbpMetric::MaxStallTime),
        PredictorKind::cbp64(CbpMetric::TotalStallTime),
        PredictorKind::Cbp {
            metric: CbpMetric::MaxStallTime,
            size: TableSize::Unlimited,
            reset_interval: None,
        },
        PredictorKind::Cbp {
            metric: CbpMetric::Binary,
            size: TableSize::Entries(64),
            reset_interval: Some(50_000),
        },
        PredictorKind::Clpt(ClptMode::Binary { threshold: 3 }),
        PredictorKind::Clpt(ClptMode::Consumers { threshold: 3 }),
    ];
    for pred in predictors {
        let cfg = small_cfg(1_500)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(pred);
        let stats = run(cfg, &AgentMix::Parallel("equake"));
        assert!(stats.cycles > 0, "{}", pred.name());
    }
}

#[test]
fn all_parallel_apps_run_end_to_end() {
    for app in critmem_workloads::PARALLEL_APPS {
        let stats = run(small_cfg(1_200), &AgentMix::Parallel(app));
        assert!(stats.cycles > 0, "{app}");
        assert!(stats.hierarchy.l2_misses > 0, "{app} should miss the L2");
        let loads: u64 = stats.cores.iter().map(|c| c.loads).sum();
        assert!(loads > 0, "{app}");
    }
}

#[test]
fn all_bundles_run_end_to_end() {
    for b in critmem_workloads::BUNDLES {
        let mut cfg = SystemConfig::multiprogrammed_baseline(1_200);
        cfg.max_cycles = 200_000_000;
        let stats = run(cfg, &AgentMix::Bundle(b.name));
        assert_eq!(stats.cores.len(), 4, "{}", b.name);
        for i in 0..4 {
            assert!(stats.ipc(i) > 0.0, "{} app {i}", b.name);
        }
    }
}

#[test]
fn prefetcher_reduces_baseline_cycles_on_streaming_app() {
    let base = run(small_cfg(4_000), &AgentMix::Parallel("swim"));
    let pf = run(
        small_cfg(4_000).with_prefetcher(),
        &AgentMix::Parallel("swim"),
    );
    assert!(pf.hierarchy.prefetches_sent > 0);
    assert!(
        pf.cycles < base.cycles,
        "stream prefetching should speed up swim ({} vs {})",
        pf.cycles,
        base.cycles
    );
    assert!(pf.hierarchy.prefetch_useful > 0);
}

#[test]
fn refresh_actually_happens_in_long_runs() {
    let stats = run(small_cfg(6_000), &AgentMix::Parallel("swim"));
    let refreshes: u64 = stats.channels.iter().map(|c| c.refreshes).sum();
    assert!(refreshes > 0, "tREFI should have elapsed at least once");
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = run(small_cfg(2_000), &AgentMix::Parallel("radix"));
    let b = run(small_cfg(2_000), &AgentMix::Parallel("radix"));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.core_finish, b.core_finish);
    assert_eq!(a.hierarchy.l2_misses, b.hierarchy.l2_misses);
    let reads = |s: &critmem::RunStats| s.channels.iter().map(|c| c.reads_completed).sum::<u64>();
    assert_eq!(reads(&a), reads(&b));
}

#[test]
fn different_seeds_differ() {
    let a = run(small_cfg(2_000), &AgentMix::Parallel("radix"));
    let mut cfg = small_cfg(2_000);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = run(cfg, &AgentMix::Parallel("radix"));
    assert_ne!(
        a.cycles, b.cycles,
        "seed must influence random address streams"
    );
}

#[test]
fn ddr3_1066_and_1600_presets_run() {
    for dev in ["DDR3-1066", "DDR3-1600"] {
        let mut cfg = small_cfg(1_500);
        cfg.dram.preset = critmem_dram::timing::preset_by_name(dev).unwrap();
        let stats = run(cfg, &AgentMix::Parallel("mg"));
        assert!(stats.cycles > 0, "{dev}");
    }
}

#[test]
fn slower_memory_means_more_cycles() {
    let mut fast = small_cfg(3_000);
    fast.dram.preset = critmem_dram::timing::preset_by_name("DDR3-2133").unwrap();
    let mut slow = small_cfg(3_000);
    slow.dram.preset = critmem_dram::timing::preset_by_name("DDR3-1066").unwrap();
    let f = run(fast, &AgentMix::Parallel("swim"));
    let s = run(slow, &AgentMix::Parallel("swim"));
    assert!(
        s.cycles > f.cycles,
        "halving the bus clock must cost cycles ({} vs {})",
        s.cycles,
        f.cycles
    );
}

#[test]
fn cacheline_interleaving_also_works() {
    let mut cfg = small_cfg(1_500);
    cfg.dram.interleaving = critmem_dram::Interleaving::CacheLine;
    let stats = run(cfg, &AgentMix::Parallel("ocean"));
    assert!(stats.cycles > 0);
}
