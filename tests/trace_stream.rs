//! End-to-end validation of the streaming trace pipeline and the
//! traffic synthesizer (`critmem_trace::stream` / `::synth`).
//!
//! Covers the subsystem's acceptance bar: streamed replay of a CMTR
//! file is byte-identical to in-memory replay of the same file (with
//! and without sampling, and for captures produced by a parallel
//! `--jobs 2` runner) while holding at most one chunk resident;
//! torn/corrupt files surface as typed errors; and the synthesizer is
//! seed-deterministic end to end (same profile + seed ⇒ identical
//! replay statistics).

use critmem::config::{AgentMix, PredictorKind, SystemConfig};
use critmem::experiments::{stream_replay, synth_replay, Runner, Scale};
use critmem::Session;
use critmem_common::codec::ByteWriter;
use critmem_dram::DramSystem;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use critmem_trace::{
    ReplayConfig, ReplayStats, Trace, TraceError, TraceReplayer, TraceStream, TrafficProfile,
    CHUNK_BYTES,
};
use std::path::PathBuf;

const INSTRUCTIONS: u64 = 2_000;
const APP: &str = "swim";

fn captured_trace() -> Trace {
    let cfg = SystemConfig::paper_baseline(INSTRUCTIONS)
        .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
    Session::new(cfg, &AgentMix::Parallel(APP))
        .traced(APP)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .observer
        .into_trace()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("critmem-stream-{tag}-{}.cmtr", std::process::id()))
}

fn stats_bytes(stats: &ReplayStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    stats.encode(&mut w);
    w.into_bytes()
}

fn replay_in_memory(trace: Trace, cfg: ReplayConfig) -> ReplayStats {
    let dram_cfg = trace.fingerprint.dram_config().unwrap();
    let threads = trace.fingerprint.cores as usize;
    let dram = DramSystem::new(dram_cfg, |ch| {
        SchedulerKind::FrFcfs.build(threads, u64::from(ch.0))
    });
    TraceReplayer::new(trace, dram, cfg).unwrap().run()
}

#[test]
fn streamed_replay_is_byte_identical_to_in_memory() {
    let trace = captured_trace();
    assert!(!trace.records.is_empty(), "capture produced no requests");
    let path = temp_path("identity");
    trace.save(&path).unwrap();

    // Plain and sampled configurations must both agree byte-for-byte.
    for cfg in [
        ReplayConfig::default(),
        ReplayConfig::default().with_sampling(5_000),
        ReplayConfig::default()
            .with_sampling(5_000)
            .with_sample_window(4),
    ] {
        let memory = replay_in_memory(Trace::load(&path).unwrap(), cfg);
        let streamed = stream_replay(&path, SchedulerKind::FrFcfs, cfg).unwrap();
        assert_eq!(
            stats_bytes(&memory),
            stats_bytes(&streamed.stats),
            "streamed vs in-memory diverged under {cfg:?}"
        );
        assert_eq!(streamed.records_read, trace.records.len() as u64);
        assert!(
            streamed.peak_resident_bytes <= CHUNK_BYTES,
            "stream held {} B resident (cap {CHUNK_BYTES} B)",
            streamed.peak_resident_bytes
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_jobs2_capture_streams_identically() {
    // The capture must not depend on the runner's worker-pool width,
    // and the streamed replay of either file must match the in-memory
    // replay byte-for-byte.
    let capture = |jobs: usize| {
        let mut r = Runner::new(Scale {
            instructions: INSTRUCTIONS,
            ..Scale::quick()
        });
        r.jobs = jobs;
        (*r.capture(APP)).clone()
    };
    let serial = capture(1);
    let pooled = capture(2);
    assert!(!serial.records.is_empty());
    assert_eq!(
        serial.to_bytes().unwrap(),
        pooled.to_bytes().unwrap(),
        "--jobs 2 capture must serialize identically to serial capture"
    );
    let path = temp_path("jobs2");
    pooled.save(&path).unwrap();
    let memory = replay_in_memory(pooled, ReplayConfig::default());
    let streamed = stream_replay(&path, SchedulerKind::FrFcfs, ReplayConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(stats_bytes(&memory), stats_bytes(&streamed.stats));
}

#[test]
fn torn_and_corrupt_files_yield_typed_errors() {
    let trace = captured_trace();
    let bytes = trace.to_bytes().unwrap();

    // Truncated finished stream: data loss, typed as Corrupt.
    let open = |bytes: &[u8]| TraceStream::new(std::io::Cursor::new(bytes.to_vec()));
    let drain = |bytes: &[u8]| -> Result<u64, TraceError> {
        let mut s = open(bytes)?;
        while s.next_record()?.is_some() {}
        Ok(s.records_read())
    };
    let err = drain(&bytes[..bytes.len() - 11]).unwrap_err();
    assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");
    assert!(err.to_string().contains("truncated"), "{err}");

    // Flipped bit inside a record: caught by the chunk CRC before any
    // record of that chunk is handed out.
    let mut corrupt = bytes.clone();
    let mid = bytes.len() / 2;
    corrupt[mid] ^= 0x20;
    let err = drain(&corrupt).unwrap_err();
    assert!(matches!(err, TraceError::Corrupt(_)), "{err:?}");

    // The same failure surfaces through the full replay path as a
    // typed SimError, not a panic.
    let path = temp_path("corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    let err = stream_replay(&path, SchedulerKind::FrFcfs, ReplayConfig::default()).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(err, critmem_common::SimError::Trace(_)),
        "got {err}"
    );
}

#[test]
fn synthesis_is_deterministic_end_to_end() {
    let trace = captured_trace();
    let profile = TrafficProfile::fit(&trace).unwrap();

    // The profile survives its CMPF disk round-trip.
    let path = std::env::temp_dir().join(format!("critmem-stream-{}.cmpf", std::process::id()));
    profile.save(&path).unwrap();
    let loaded = TrafficProfile::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, profile);

    // Same profile + same seed ⇒ identical replay statistics; a
    // different seed must diverge.
    let run = |seed: u64| {
        synth_replay(
            &loaded,
            seed,
            20_000,
            SchedulerKind::CasRasCrit,
            ReplayConfig::default().with_max_outstanding(128),
        )
        .unwrap()
    };
    let (a, b, c) = (run(7), run(7), run(8));
    assert_eq!(a.generated, 20_000);
    assert_eq!(
        stats_bytes(&a.stats),
        stats_bytes(&b.stats),
        "same seed must reproduce the replay exactly"
    );
    assert_ne!(
        stats_bytes(&a.stats),
        stats_bytes(&c.stats),
        "different seeds must diverge"
    );
}

#[test]
fn windowed_sampling_holds_series_constant_over_long_horizons() {
    let profile = TrafficProfile::fit(&captured_trace()).unwrap();
    let out = synth_replay(
        &profile,
        5,
        30_000,
        SchedulerKind::FrFcfs,
        ReplayConfig::default()
            .with_max_outstanding(128)
            .with_sampling(50_000)
            .with_sample_window(8),
    )
    .unwrap();
    let series = out.stats.series.expect("sampling was on");
    assert!(
        series.len() <= 8,
        "window of 8 must bound the series, got {} rows",
        series.len()
    );
    assert!(series.len() > 1, "long horizon should fill the window");
}
