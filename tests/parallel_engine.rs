//! Determinism suite for the parallel experiment engine: a runner with
//! `jobs = 4` must produce exactly the same tables and memo-table
//! contents as a serial runner, for every experiment family the `repro`
//! binary drives through [`Runner::run_parallel`].

use critmem::experiments::{fig10, fig12, trace_sweep, Runner, Scale};

fn tiny_scale() -> Scale {
    Scale {
        instructions: 1_200,
        apps: vec!["swim", "mg"],
        sweep_apps: vec!["swim"],
        bundles: vec!["AELV"],
    }
}

fn runner(jobs: usize) -> Runner {
    let mut r = Runner::new(tiny_scale());
    r.jobs = jobs;
    r
}

#[test]
fn compare_figures_identical_across_jobs() {
    let mut serial = runner(1);
    let mut parallel = runner(4);
    let a = serial.run_parallel(fig10).to_table().to_string();
    let b = parallel.run_parallel(fig10).to_table().to_string();
    assert_eq!(a, b, "fig10 table must not depend on jobs");
    assert_eq!(serial.runs_executed(), parallel.runs_executed());
    assert_eq!(serial.memo_snapshot(), parallel.memo_snapshot());
}

#[test]
fn multiprog_identical_across_jobs() {
    let mut serial = runner(1);
    let mut parallel = runner(4);
    let a = serial.run_parallel(fig12).to_table().to_string();
    let b = parallel.run_parallel(fig12).to_table().to_string();
    assert_eq!(a, b, "fig12 table must not depend on jobs");
    assert_eq!(serial.memo_snapshot(), parallel.memo_snapshot());
}

#[test]
fn trace_sweep_identical_across_jobs() {
    let mut serial = runner(1);
    let mut parallel = runner(4);
    // `trace_sweep` calls `run_parallel` internally, phase by phase.
    let a = trace_sweep(&mut serial, "swim").to_table().to_string();
    let b = trace_sweep(&mut parallel, "swim").to_table().to_string();
    assert_eq!(a, b, "trace sweep table must not depend on jobs");
    assert_eq!(serial.replays_executed(), parallel.replays_executed());
    assert_eq!(serial.memo_snapshot(), parallel.memo_snapshot());
}

#[test]
fn parallel_run_warms_the_same_cache_as_serial() {
    // After a parallel run, a repeat of the same experiment must be
    // pure cache recall (no new simulations) — the memo-merge step
    // really did populate the cache, not a side table.
    let mut r = runner(4);
    let _ = r.run_parallel(fig10);
    let executed = r.runs_executed();
    let _ = r.run_parallel(fig10);
    assert_eq!(r.runs_executed(), executed, "second pass must be free");
}

#[test]
fn reentrant_run_parallel_is_serial_and_correct() {
    // An experiment that itself calls run_parallel must not deadlock or
    // double-plan when invoked under an outer run_parallel.
    let mut r = runner(4);
    let table = r
        .run_parallel(|r| r.run_parallel(fig10).to_table().to_string())
        .to_string();
    let mut serial = runner(1);
    let expect = serial.run_parallel(fig10).to_table().to_string();
    assert_eq!(table, expect);
}
