//! End-to-end tests for the observability layer (DESIGN.md §6e): real
//! sampled runs round-tripped through both export formats, the
//! `--jobs` determinism contract, and the empty-run denominator audit.

use critmem::config::PredictorKind;
use critmem::experiments::{stats_export, Runner, Scale};
use critmem::{AgentMix, SystemConfig};
use critmem_common::SeriesExport;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn sampled_export(jobs: usize) -> SeriesExport {
    let mut r = Runner::new(Scale::quick());
    r.jobs = jobs;
    stats_export(
        &mut r,
        &["art", "mg", "swim"],
        SchedulerKind::CasRasCrit,
        PredictorKind::cbp64(CbpMetric::MaxStallTime),
        5_000,
    )
}

#[test]
fn jsonl_round_trips_a_real_export() {
    let export = sampled_export(1);
    let text = export.to_jsonl();
    let parsed = SeriesExport::parse_jsonl(&text).expect("emitted JSONL must parse");
    assert_eq!(parsed, export);
    // Re-serializing the parse is byte-identical (stable format).
    assert_eq!(parsed.to_jsonl(), text);
}

#[test]
fn csv_round_trips_values_and_cycles() {
    let export = sampled_export(1);
    let text = export.to_csv();
    let parsed = SeriesExport::parse_csv(&text).expect("emitted CSV must parse");
    assert_eq!(parsed.runs.len(), export.runs.len());
    for (p, e) in parsed.runs.iter().zip(&export.runs) {
        assert_eq!(p.run, e.run);
        assert_eq!(p.series.cycles(), e.series.cycles());
        for row in 0..e.series.len() {
            assert_eq!(
                p.series.row(row),
                e.series.row(row),
                "run {} row {row}",
                e.run
            );
        }
    }
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_exports() {
    let serial = sampled_export(1);
    let parallel = sampled_export(4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn sampled_run_matches_unsampled_results() {
    // Sampling is pull-based and must not perturb the simulation.
    let mut cfg = SystemConfig::paper_baseline(2_000);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    let wl = AgentMix::Parallel("swim");
    let plain = critmem::Session::new(cfg.clone(), &wl)
        .run()
        .expect("plain run")
        .stats;
    let sampled = critmem::Session::new(cfg, &wl)
        .sampling(1_000)
        .run()
        .expect("sampled run")
        .stats;
    assert_eq!(plain.cycles, sampled.cycles);
    assert_eq!(plain.hierarchy.l2_misses, sampled.hierarchy.l2_misses);
    assert!(plain.series.is_none());
    let series = sampled.series.expect("sampling was enabled");
    assert!(series.len() >= 2);
    // The final sample reflects the end-of-run counters exactly.
    let last = series.len() - 1;
    assert_eq!(
        series.value(last, "cache.l2.l2_misses"),
        Some(sampled.hierarchy.l2_misses as f64)
    );
}

#[test]
fn empty_run_stats_stay_finite() {
    // A system finalized before any step must not divide by zero
    // anywhere in the derived statistics.
    let mut cfg = SystemConfig::paper_baseline(1_000);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    let stats =
        critmem::System::new(cfg.with_sampling(10_000), &AgentMix::Parallel("swim")).into_stats();
    for core in 0..2 {
        assert!(stats.ipc(core).is_finite());
        assert!(stats.cores[core].ipc().is_finite());
    }
    assert!(stats.blocked_load_fraction().is_finite());
    assert!(stats.blocked_cycle_fraction().is_finite());
    assert!(stats.lq_full_fraction().is_finite());
    let (one, many) = stats.critical_queue_fractions();
    assert!(one.is_finite() && many.is_finite());
    for ch in &stats.channels {
        assert!(ch.row_hit_rate().is_finite());
        assert!(ch.mean_occupancy().is_finite());
        assert!(ch.mean_read_latency().is_finite());
        assert!(ch.bus_utilization().is_finite());
        assert!(ch.mean_critical_read_latency().is_finite());
        assert!(ch.mean_noncritical_read_latency().is_finite());
    }
    // The end-of-run sample exists even though nothing ever ran, and
    // every gauge in it is finite (RowWriter clamps non-finite values).
    let series = stats.series.expect("sampling was enabled");
    assert_eq!(series.len(), 1);
    assert!(series.row(0).iter().all(|v| v.is_finite()));

    // Replay stats share the audit.
    let replay = critmem_trace::ReplayStats::default();
    assert!(replay.mean_read_latency().is_finite());
    assert!(replay.mean_critical_read_latency().is_finite());
}
