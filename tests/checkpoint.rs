//! End-to-end contract of the checkpoint & warm-start engine
//! (DESIGN.md §6g): bit-exact same-config restores across every CBP
//! annotation metric, the component-swap equivalence, typed errors on
//! corrupt `CMCK` artifacts, and the `--jobs N` determinism of
//! warm-started sweeps.

use critmem::config::{AgentMix, PredictorKind, SystemConfig};
use critmem::experiments::{Runner, Scale};
use critmem::{Checkpoint, RunStats, Session, System};
use critmem_common::codec::ByteWriter;
use critmem_common::SimError;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

const BOUNDARY: u64 = 2_500;

fn small_cfg(instructions: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(instructions);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    cfg.max_cycles = 50_000_000;
    cfg
}

fn encode(stats: &RunStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    stats.encode(&mut w);
    w.into_bytes()
}

/// Checkpointing mid-run and restoring under the *same* configuration
/// must be invisible: every statistic of the continued run is
/// bit-identical to the uninterrupted run, for each of the five CBP
/// annotation metrics (whose table state rides inside the snapshot).
#[test]
fn same_config_restore_is_bit_exact_for_every_cbp_metric() {
    let wl = AgentMix::Parallel("swim");
    for metric in [
        CbpMetric::Binary,
        CbpMetric::BlockCount,
        CbpMetric::LastStallTime,
        CbpMetric::MaxStallTime,
        CbpMetric::TotalStallTime,
    ] {
        let cfg = small_cfg(2_000)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::cbp64(metric));
        let cold = Session::new(cfg.clone(), &wl)
            .run()
            .unwrap_or_else(|e| panic!("{metric:?} cold: {e}"))
            .stats;
        let ckpt = Session::new(cfg.clone(), &wl)
            .checkpoint_at(BOUNDARY)
            .run_to_checkpoint()
            .unwrap_or_else(|e| panic!("{metric:?} warmup: {e}"));
        // Round-trip through the CMCK wire format so the on-disk path
        // is part of the equivalence, not just the in-memory object.
        let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let warm = Session::from_checkpoint(&ckpt, cfg, &wl)
            .run()
            .unwrap_or_else(|e| panic!("{metric:?} warm: {e}"))
            .stats;
        assert_eq!(
            encode(&cold),
            encode(&warm),
            "{metric:?}: warm continuation diverged from the cold run"
        );
    }
}

/// Restoring a baseline checkpoint under a *different* scheduler and
/// predictor must equal driving the baseline system to the boundary
/// and swapping the components in place — the warm-start engine's
/// correctness anchor for shared-warmup sweeps.
#[test]
fn component_swap_matches_in_place_reconfigure() {
    let wl = AgentMix::Parallel("swim");
    let base = small_cfg(2_000); // FR-FCFS, no predictor
    let sched = SchedulerKind::CasRasCrit;
    let pred = PredictorKind::cbp64(CbpMetric::MaxStallTime);

    let ckpt = Session::new(base.clone(), &wl)
        .checkpoint_at(BOUNDARY)
        .run_to_checkpoint()
        .unwrap();
    let warm = Session::from_checkpoint(
        &ckpt,
        base.clone().with_scheduler(sched).with_predictor(pred),
        &wl,
    )
    .run()
    .unwrap()
    .stats;

    // Reference arm: one uninterrupted system, components swapped at
    // the same cycle.
    let mut sys = System::try_new(base, &wl).unwrap();
    while sys.now() < BOUNDARY && !sys.done() {
        sys.step();
    }
    sys.reconfigure(sched, pred);
    while !sys.done() {
        sys.step();
    }
    let reference = sys.into_stats();

    assert_eq!(
        encode(&warm),
        encode(&reference),
        "warm component swap diverged from in-place reconfigure"
    );
}

/// Checkpointing a heterogeneous mix holding all four agent classes
/// and restoring through the on-disk `CMCK` wire format must be
/// invisible: the continued run is bit-identical to the uninterrupted
/// one, agent state (stream positions, open batches, prefetch RNG,
/// overflow queue) included.
#[test]
fn hetero_mix_restore_is_bit_exact_for_all_four_classes() {
    let mix: AgentMix = "ooo:mcf*2+stream+bulk:copy+prefetch:wild"
        .parse()
        .expect("grammar");
    let mut cfg = SystemConfig::multiprogrammed_baseline(1_200);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    cfg.max_cycles = 50_000_000;
    // Streaming agents legitimately starve same-bank victims under
    // FR-FCFS; loosen the starvation watchdog accordingly.
    cfg.watchdog.max_request_age = 2_000_000;
    let cold = Session::new(cfg.clone(), &mix).run().unwrap().stats;
    let ckpt = Session::new(cfg.clone(), &mix)
        .checkpoint_at(BOUNDARY)
        .run_to_checkpoint()
        .unwrap();
    let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
    let warm = Session::from_checkpoint(&ckpt, cfg, &mix)
        .run()
        .unwrap()
        .stats;
    assert_eq!(
        encode(&cold),
        encode(&warm),
        "hetero warm continuation diverged from the cold run"
    );
    assert_eq!(warm.agents.len(), 3);
}

/// Damaged `CMCK` files surface as typed errors — never panics — and a
/// healthy file survives the disk round-trip.
#[test]
fn corrupt_checkpoint_files_yield_typed_errors() {
    let wl = AgentMix::Parallel("swim");
    let ckpt = Session::new(small_cfg(1_000), &wl)
        .checkpoint_at(500)
        .run_to_checkpoint()
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "critmem-checkpoint-test-{}.cmck",
        std::process::id()
    ));
    ckpt.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.cycle(), ckpt.cycle());
    assert_eq!(loaded.state_len(), ckpt.state_len());

    let bytes = std::fs::read(&path).unwrap();

    // Torn tail (crash mid-write).
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    match Checkpoint::load(&path) {
        Err(SimError::Artifact(msg)) => {
            assert!(msg.contains("truncated"), "diagnosis: {msg}")
        }
        other => panic!("truncated file: expected Artifact error, got {other:?}"),
    }

    // Flipped payload byte (bit rot) — the CRC must catch it.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    std::fs::write(&path, &bad).unwrap();
    match Checkpoint::load(&path) {
        Err(SimError::Artifact(msg)) => assert!(msg.contains("CRC"), "diagnosis: {msg}"),
        other => panic!("corrupt file: expected Artifact error, got {other:?}"),
    }

    std::fs::remove_file(&path).ok();
    match Checkpoint::load(&path) {
        Err(SimError::Io { path: Some(p), .. }) => {
            assert!(p.contains("critmem-checkpoint-test"))
        }
        other => panic!("missing file: expected Io error, got {other:?}"),
    }
}

/// A warm-started sweep fanned out across worker threads produces the
/// same memoized results, cell for cell, as the same sweep run
/// serially — and every non-sampling cell carries the `+warm` memo
/// suffix so journals never mix warm and cold results.
#[test]
fn warm_parallel_sweep_matches_serial() {
    let drive = |r: &mut Runner| {
        for sched in [
            SchedulerKind::FrFcfs,
            SchedulerKind::CritCasRas,
            SchedulerKind::CasRasCrit,
        ] {
            r.parallel("swim", sched, PredictorKind::cbp64(CbpMetric::MaxStallTime));
        }
    };

    // Serial arm: direct calls, no plan/execute pooling.
    let mut serial = Runner::new(Scale::quick());
    serial.jobs = 1;
    serial.warm_cycles = Some(2_000);
    drive(&mut serial);
    assert!(!serial.has_failures(), "{:?}", serial.failures());

    // Parallel arm: planned, warmed once on the pool, fanned out.
    let mut pooled = Runner::new(Scale::quick());
    pooled.jobs = 4;
    pooled.warm_cycles = Some(2_000);
    pooled.run_parallel(|r| drive(r));
    assert!(!pooled.has_failures(), "{:?}", pooled.failures());

    assert_eq!(serial.memo_snapshot(), pooled.memo_snapshot());
    // 3 cells + 1 shared warmup on each arm.
    assert_eq!(serial.runs_executed(), 4);
    assert_eq!(pooled.runs_executed(), 4);
    assert!(serial
        .memo_snapshot()
        .iter()
        .all(|(key, _)| key.contains("+warm2000")));
}

/// Warm and cold runs of the same cell must occupy different memo
/// keys, and sampling cells always run cold (their series must cover
/// the whole run, warmup included).
#[test]
fn warm_memo_keys_never_collide_with_cold() {
    let cell = |r: &mut Runner| {
        r.parallel("swim", SchedulerKind::FrFcfs, PredictorKind::None);
        r.parallel_with(
            "swim",
            SchedulerKind::FrFcfs,
            PredictorKind::None,
            "sampled",
            |c| c.with_sampling(1_000),
        );
    };
    let mut cold = Runner::new(Scale::quick());
    cold.jobs = 1;
    cell(&mut cold);
    let mut warm = Runner::new(Scale::quick());
    warm.jobs = 1;
    warm.warm_cycles = Some(1_000);
    cell(&mut warm);

    let cold_keys: Vec<String> = cold.memo_snapshot().into_iter().map(|(k, _)| k).collect();
    let warm_keys: Vec<String> = warm.memo_snapshot().into_iter().map(|(k, _)| k).collect();
    assert!(cold_keys.iter().all(|k| !k.contains("+warm")));
    // The plain cell is suffixed; the sampling cell stays on its cold
    // key because it is excluded from warm starts.
    assert_eq!(
        warm_keys.iter().filter(|k| k.contains("+warm1000")).count(),
        1,
        "keys: {warm_keys:?}"
    );
    assert!(warm_keys
        .iter()
        .any(|k| k.contains("sampled") && !k.contains("+warm")));
    // Warm and cold cells can share a journal without collisions.
    assert!(cold_keys
        .iter()
        .all(|k| !warm_keys.contains(k) || k.contains("sampled")));
}

/// The warm path's results equal the cold path's warmup-equivalent:
/// a cell whose configuration matches the warmup configuration
/// (FR-FCFS, no predictor, no sampling) restores its own saved
/// component state, so warm and cold stats for the baseline cell are
/// bit-identical.
#[test]
fn baseline_cell_is_bit_exact_under_warm_start() {
    let mut cold = Runner::new(Scale::quick());
    cold.jobs = 1;
    let a = cold.parallel("swim", SchedulerKind::FrFcfs, PredictorKind::None);
    let mut warm = Runner::new(Scale::quick());
    warm.jobs = 1;
    warm.warm_cycles = Some(2_000);
    let b = warm.parallel("swim", SchedulerKind::FrFcfs, PredictorKind::None);
    assert_eq!(encode(&a), encode(&b));
}
