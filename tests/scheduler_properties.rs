//! Property-based tests over the DRAM controller + scheduler stack:
//! conservation, liveness (no starvation), and priority invariants,
//! driven by randomized request sequences.

use critmem_common::{AccessKind, ChannelId, CoreId, Criticality, MemRequest, SmallRng};
use critmem_dram::{AddressMapping, ChannelController, CommandScheduler, DramConfig, Interleaving};
use critmem_sched::{
    Ahb, Arrangement, CritFrFcfs, FrFcfs, Morse, MorseConfig, ParBs, Tcm, TcmTiebreak,
};

/// Drives a randomized request mix through one channel and checks that
/// every request completes (liveness + conservation).
fn drive(
    mut scheduler_factory: impl FnMut() -> Box<dyn CommandScheduler>,
    reqs: &[(u64, bool, u8, u64)], // (addr seed, is_write, core, crit magnitude)
) {
    let mut cfg = DramConfig::paper_baseline();
    cfg.starvation_cap = 2_000;
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, scheduler_factory());
    let mut pending: Vec<u64> = Vec::new();
    let mut to_send: Vec<MemRequest> = reqs
        .iter()
        .enumerate()
        .map(|(i, &(seed, is_write, core, crit))| {
            // Map the seed onto channel-0 addresses only: channel bits
            // are addr[12:11] under page interleaving (1 KB rows, 4
            // channels), so scale rows by the channel count.
            let row_block = seed % 4_096;
            let addr = row_block * 4 * 1_024 + (seed % 16) * 64;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            MemRequest::new(i as u64, addr, kind, CoreId(core % 8))
                .with_criticality(Criticality::ranked(crit))
        })
        .collect();
    let total = to_send.len();
    let mut completed = 0usize;
    let mut cycles = 0u64;
    while completed < total && cycles < 4_000_000 {
        cycles += 1;
        // Feed a couple of requests per cycle as space allows.
        for _ in 0..2 {
            if let Some(req) = to_send.pop() {
                let loc = map.locate(req.addr);
                assert_eq!(
                    loc.channel,
                    ChannelId(0),
                    "test addresses must be channel-0"
                );
                match ctl.enqueue(req, loc) {
                    Ok(()) => pending.push(1),
                    Err(req) => to_send.push(req),
                }
                if !to_send.is_empty() && ctl.queue_len() >= 60 {
                    break;
                }
            }
        }
        completed += ctl.tick().len();
    }
    assert_eq!(completed, total, "requests starved after {cycles} cycles");
}

/// Seeded stand-in for the old proptest strategy: a random request mix
/// of 1..120 entries of (addr seed, is_write, core, crit magnitude).
fn request_mix(rng: &mut SmallRng) -> Vec<(u64, bool, u8, u64)> {
    let len = rng.gen_range_usize(1..120);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..100_000),
                rng.gen_bool(0.3),
                rng.gen_range(0..8) as u8,
                rng.gen_range(0..10_000),
            )
        })
        .collect()
}

/// FR-FCFS never loses or starves a request.
#[test]
fn frfcfs_conserves() {
    let mut rng = SmallRng::seed_from_u64(0x0005_C4ED_0001);
    for _ in 0..12 {
        let reqs = request_mix(&mut rng);
        drive(|| Box::new(FrFcfs::new()), &reqs);
    }
}

/// Both criticality arrangements preserve liveness even with
/// adversarial criticality magnitudes (the starvation cap is the
/// safety net, §3.2).
#[test]
fn crit_schedulers_conserve() {
    let mut rng = SmallRng::seed_from_u64(0x0005_C4ED_0002);
    for _ in 0..12 {
        let reqs = request_mix(&mut rng);
        drive(
            || Box::new(CritFrFcfs::new(Arrangement::CasRasFirst)),
            &reqs,
        );
        drive(|| Box::new(CritFrFcfs::new(Arrangement::CritFirst)), &reqs);
    }
}

/// The baseline comparison schedulers preserve liveness.
#[test]
fn baseline_schedulers_conserve() {
    let mut rng = SmallRng::seed_from_u64(0x0005_C4ED_0003);
    for _ in 0..12 {
        let reqs = request_mix(&mut rng);
        drive(|| Box::new(Ahb::new()), &reqs);
        drive(|| Box::new(ParBs::new(5)), &reqs);
        drive(|| Box::new(Tcm::new(8, TcmTiebreak::FrFcfs, 7)), &reqs);
        drive(|| Box::new(Morse::new(MorseConfig::default())), &reqs);
    }
}

/// Deterministic starvation scenario: a stream of critical row hits
/// must not starve a non-critical row conflict past the cap.
#[test]
fn starvation_cap_bounds_delay_under_criticality() {
    let mut cfg = DramConfig::paper_baseline();
    cfg.starvation_cap = 500;
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(
        ChannelId(0),
        cfg,
        Box::new(CritFrFcfs::new(Arrangement::CasRasFirst)),
    );
    // Victim: non-critical request to row 1 of bank 0 (address 128 KB
    // keeps channel 0, same bank, different row).
    let victim = MemRequest::new(0, 128 * 1024, AccessKind::Read, CoreId(1));
    ctl.enqueue(victim, map.locate(128 * 1024)).unwrap();
    let mut victim_done_at = None;
    let mut next_id = 1u64;
    for cycle in 0..20_000u64 {
        // Keep the queue stocked with critical row hits to row 0.
        if ctl.queue_len() < 8 {
            let addr = (next_id % 16) * 64;
            let req = MemRequest::new(next_id, addr, AccessKind::Read, CoreId(0))
                .with_criticality(Criticality::ranked(1_000_000));
            next_id += 1;
            let _ = ctl.enqueue(req, map.locate(addr));
        }
        for done in ctl.tick() {
            if done.req.id == 0 {
                victim_done_at = Some(cycle);
            }
        }
        if victim_done_at.is_some() {
            break;
        }
    }
    let done = victim_done_at.expect("victim starved beyond test horizon");
    assert!(
        done < 5_000,
        "victim should complete shortly after the 500-cycle cap, took {done}"
    );
    assert!(ctl.stats().starvation_promotions >= 1);
}

/// Criticality ordering is observable end to end: with two same-bank
/// row conflicts queued, the critical one is serviced first.
#[test]
fn critical_conflict_wins_over_older_noncritical() {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(
        ChannelId(0),
        cfg,
        Box::new(CritFrFcfs::new(Arrangement::CasRasFirst)),
    );
    // Same bank (bank 0, channel 0), two different rows.
    let older = MemRequest::new(1, 128 * 1024, AccessKind::Read, CoreId(0));
    let critical = MemRequest::new(2, 256 * 1024, AccessKind::Read, CoreId(1))
        .with_criticality(Criticality::ranked(999));
    ctl.enqueue(older, map.locate(128 * 1024)).unwrap();
    ctl.enqueue(critical, map.locate(256 * 1024)).unwrap();
    let mut order = Vec::new();
    for _ in 0..1_000 {
        for c in ctl.tick() {
            order.push(c.req.id);
        }
        if order.len() == 2 {
            break;
        }
    }
    assert_eq!(order, vec![2, 1], "critical request must be serviced first");
}
