//! Property-based tests over the workload generators: every app must
//! emit well-formed, deterministic instruction streams whose
//! dependences are resolvable by the core.

use critmem_common::SmallRng;
use critmem_cpu::{InstrKind, InstrSource};
use critmem_workloads::{multi_app, parallel_app, AppThread, MULTI_APPS, PARALLEL_APPS};

fn all_specs() -> Vec<critmem_workloads::AppSpec> {
    PARALLEL_APPS
        .iter()
        .map(|a| parallel_app(a).unwrap())
        .chain(MULTI_APPS.iter().map(|a| multi_app(a).unwrap()))
        .collect()
}

#[test]
fn every_app_stream_is_deterministic() {
    for spec in all_specs() {
        let mut a = AppThread::new(&spec, 2, 99);
        let mut b = AppThread::new(&spec, 2, 99);
        for i in 0..5_000 {
            assert_eq!(
                a.next_instr(),
                b.next_instr(),
                "{} diverged at {i}",
                spec.name
            );
        }
    }
}

#[test]
fn dependences_point_backwards_and_near() {
    // A src distance must be positive and small enough that the
    // producer can still be in a 128-entry ROB when the consumer
    // dispatches; otherwise the dependence silently degrades.
    for spec in all_specs() {
        let mut t = AppThread::new(&spec, 0, 7);
        for i in 0..5_000u64 {
            let instr = t.next_instr();
            for d in [instr.src1, instr.src2].into_iter().flatten() {
                assert!(d > 0, "{}: zero dependence distance", spec.name);
                assert!(
                    u64::from(d) <= 127,
                    "{}: dependence distance {d} exceeds ROB reach at instr {i}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn memory_addresses_are_canonical() {
    for spec in all_specs() {
        let mut t = AppThread::new(&spec, 3, 7);
        for _ in 0..5_000 {
            let instr = t.next_instr();
            if let InstrKind::Load { addr } | InstrKind::Store { addr } = instr.kind {
                assert_eq!(addr % 8, 0, "{}: misaligned address {addr:#x}", spec.name);
                assert!(addr > 0, "{}: null-ish address", spec.name);
            }
        }
    }
}

#[test]
fn static_pc_population_is_loop_bounded() {
    // The CBP's premise (§5.3.1): dynamic loads stem from a small
    // static population.
    for spec in all_specs() {
        let mut t = AppThread::new(&spec, 0, 7);
        let mut pcs = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let i = t.next_instr();
            if matches!(i.kind, InstrKind::Load { .. }) {
                pcs.insert(i.pc);
            }
        }
        assert!(
            pcs.len() <= 200,
            "{}: {} static loads — should be loop-bounded",
            spec.name,
            pcs.len()
        );
        assert!(!pcs.is_empty(), "{}", spec.name);
    }
}

#[test]
fn branch_mispredict_rate_tracks_accuracy() {
    for spec in all_specs() {
        let mut t = AppThread::new(&spec, 0, 7);
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        for _ in 0..100_000 {
            if let InstrKind::Branch { mispredict } = t.next_instr().kind {
                branches += 1;
                mispredicts += u64::from(mispredict);
            }
        }
        if branches < 500 {
            continue;
        }
        let rate = mispredicts as f64 / branches as f64;
        let expect = 1.0 - spec.branch_accuracy;
        assert!(
            (rate - expect).abs() < 0.02,
            "{}: mispredict rate {rate:.3} vs configured {expect:.3}",
            spec.name
        );
    }
}

/// Seeds and cores always produce valid streams (no panics, aligned
/// addresses, bounded dependences). 16 seeded cases, formerly proptest.
#[test]
fn arbitrary_seed_and_core_are_safe() {
    let mut rng = SmallRng::seed_from_u64(0x30AD_0001);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let core = rng.gen_range_usize(0..8);
        let app_i = rng.gen_range_usize(0..9);
        let spec = parallel_app(PARALLEL_APPS[app_i]).unwrap();
        let mut t = AppThread::new(&spec, core, seed);
        for _ in 0..2_000 {
            let i = t.next_instr();
            if let InstrKind::Load { addr } | InstrKind::Store { addr } = i.kind {
                assert_eq!(addr % 8, 0);
            }
            for d in [i.src1, i.src2].into_iter().flatten() {
                assert!(d > 0 && d <= 127);
            }
        }
    }
}

/// Different cores of a parallel app never emit the same private
/// stream (they may share the shared region only).
#[test]
fn cores_differ() {
    for app in PARALLEL_APPS.iter().take(9) {
        let spec = parallel_app(app).unwrap();
        let mut a = AppThread::new(&spec, 0, 1);
        let mut b = AppThread::new(&spec, 1, 1);
        let differs = (0..1_000).any(|_| a.next_instr() != b.next_instr());
        assert!(differs, "{}", spec.name);
    }
}
