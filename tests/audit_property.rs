//! Property: auditing is an observer, never a participant. Across
//! every scheduler, several seeds, and every engine mode (serial,
//! sharded DRAM tick, skip-ahead disabled), an audited run must (a)
//! raise no violation and (b) export statistics byte-identical to the
//! unaudited run's.

use critmem::experiments::audit_schedulers;
use critmem::{AgentMix, Session, SystemConfig};
use critmem_common::codec::ByteWriter;
use critmem_sched::SchedulerKind;

fn cfg(sched: SchedulerKind, seed_xor: u64, shards: usize, skip_ahead: bool) -> SystemConfig {
    let mut c = SystemConfig::multiprogrammed_baseline(250);
    c.max_cycles = 50_000_000;
    c.seed ^= seed_xor;
    c.scheduler = sched;
    c.shards = shards;
    c.skip_ahead = skip_ahead;
    c
}

fn stats_bytes(c: SystemConfig, audit: bool, what: &str) -> Vec<u8> {
    let out = Session::new(c, &AgentMix::Bundle("AELV"))
        .audit(audit)
        .run()
        .unwrap_or_else(|e| panic!("{what}: clean run raised {e}"));
    let mut w = ByteWriter::new();
    out.stats.encode(&mut w);
    w.into_bytes()
}

#[test]
fn audit_is_invisible_across_schedulers_seeds_and_engines() {
    for (name, sched) in audit_schedulers() {
        for seed_xor in 0..3u64 {
            let baseline = stats_bytes(
                cfg(sched, seed_xor, 1, true),
                false,
                &format!("{name} seed^{seed_xor} unaudited"),
            );
            for (mode, shards, skip_ahead) in [
                ("serial", 1, true),
                ("shards2", 2, true),
                ("no-skip", 1, false),
            ] {
                let audited = stats_bytes(
                    cfg(sched, seed_xor, shards, skip_ahead),
                    true,
                    &format!("{name} seed^{seed_xor} audited {mode}"),
                );
                assert_eq!(
                    baseline, audited,
                    "{name} seed^{seed_xor} {mode}: audited stats diverged from unaudited"
                );
            }
        }
    }
}
