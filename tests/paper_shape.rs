//! Shape tests: the paper's qualitative claims must hold at test
//! scale. These deliberately use loose thresholds — the claim under
//! test is *direction and ordering*, not magnitude (see DESIGN.md §8).

use critmem::experiments::{fig1, fig4, Runner, Scale};
use critmem::metrics::mean;

fn runner() -> Runner {
    Runner::new(Scale {
        instructions: 6_000,
        apps: vec!["art", "mg", "swim"],
        sweep_apps: vec!["mg"],
        bundles: vec![],
    })
}

#[test]
fn rob_blocking_dominates_execution_time() {
    // Paper Figure 1: few dynamic loads block the head, but they block
    // it for a large share of cycles.
    let mut r = runner();
    let f = fig1(&mut r);
    assert!(
        f.avg_cycle_fraction() > 0.15,
        "long-latency loads should dominate stall time, got {:.3}",
        f.avg_cycle_fraction()
    );
    assert!(
        f.avg_load_fraction() < 0.5,
        "only a minority of loads should block, got {:.3}",
        f.avg_load_fraction()
    );
    assert!(
        f.avg_cycle_fraction() > 2.0 * f.avg_load_fraction(),
        "cycle share must far exceed load share"
    );
}

#[test]
fn criticality_scheduling_beats_frfcfs_and_clpt_does_not() {
    // Paper Figures 3/4: CBP-based criticality produces real speedups;
    // the CLPT criterion does not help the memory scheduler.
    let mut r = runner();
    let f = fig4(&mut r);
    let cbp_best = ["BlockCount", "MaxStallTime", "TotalStallTime"]
        .iter()
        .map(|m| f.average_of(m).unwrap())
        .fold(f64::MIN, f64::max);
    let binary = f.average_of("Binary").unwrap();
    let clpt = f.average_of("CLPT-Consumers").unwrap();
    assert!(
        binary > 1.0,
        "Binary CBP should speed up execution, got {binary:.3}"
    );
    assert!(
        cbp_best > 1.01,
        "ranked CBP should show a clear gain, got {cbp_best:.3}"
    );
    // At test scale the fine Binary-vs-ranked ordering is within
    // noise (the paper's gap is ~3 points at 500M instructions);
    // require only that ranking stays in the same band.
    assert!(
        cbp_best >= binary - 0.06,
        "ranking should not lose badly to binary ({cbp_best:.3} vs {binary:.3})"
    );
    assert!(
        clpt < binary,
        "CLPT should underperform the CBP ({clpt:.3} vs {binary:.3})"
    );
    assert!(
        (0.95..1.08).contains(&clpt),
        "CLPT should be near-neutral, got {clpt:.3}"
    );
}

#[test]
fn speedups_are_not_noise() {
    // The averaged criticality gain must exceed seed-to-seed noise.
    let mut r = runner();
    let f = fig4(&mut r);
    let series = f.series.iter().find(|s| s.label == "MaxStallTime").unwrap();
    let avg = mean(&series.per_app);
    assert!(
        avg > 1.0,
        "average MaxStallTime speedup {avg:.3} should exceed 1.0"
    );
}
