//! Fault-isolated sweeps and resumable journals: one bad cell must
//! never cost the rest of the sweep, and a journaled sweep must resume
//! to byte-identical results.

use critmem::config::{AgentMix, PredictorKind};
use critmem::experiments::{Runner, Scale};
use critmem::journal::SweepJournal;
use critmem_common::SimError;
use critmem_sched::SchedulerKind;
use std::path::PathBuf;

fn tiny_scale() -> Scale {
    Scale {
        instructions: 500,
        ..Scale::quick()
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("critmem-resilience-{name}-{}", std::process::id()));
    p
}

/// A cell that livelocks (wedged scheduler, watchdog trip) is recorded
/// as a per-cell failure while the surrounding cells complete and the
/// figure still renders from placeholder values.
#[test]
fn wedged_cell_fails_alone_and_the_sweep_survives() {
    let mut r = Runner::new(tiny_scale());
    let good_before = r.baseline("swim");
    let bad = r.parallel("swim", SchedulerKind::Wedged, PredictorKind::None);
    let good_after = r.baseline("mg");
    assert!(good_before.cycles > 1 && good_after.cycles > 1);
    assert_eq!(bad.cycles, 1, "failed cell must hold the placeholder");
    assert!(r.has_failures());
    assert_eq!(r.failures().len(), 1);
    let f = &r.failures()[0];
    assert!(f.key.contains("Wedged"), "{}", f.key);
    assert!(matches!(f.error, SimError::Watchdog(_)), "{:?}", f.error);
    // The placeholder is memoized: re-requesting the failed cell must
    // not re-run the livelock (and must not duplicate the failure).
    let again = r.parallel("swim", SchedulerKind::Wedged, PredictorKind::None);
    assert!(std::sync::Arc::ptr_eq(&bad, &again));
    assert_eq!(r.failures().len(), 1);
}

/// Typed per-cell errors (not just panics) are isolated on the
/// parallel path too, and the result is independent of the job count.
#[test]
fn parallel_sweep_with_wedged_cell_matches_serial() {
    let sweep = |jobs: usize| {
        let mut r = Runner::new(tiny_scale());
        r.jobs = jobs;
        r.run_parallel(|r| {
            for app in ["swim", "mg"] {
                r.baseline(app);
                r.parallel(app, SchedulerKind::Wedged, PredictorKind::None);
            }
        });
        let failures: Vec<String> = r.failures().iter().map(|f| f.key.clone()).collect();
        (r.memo_snapshot(), failures)
    };
    let (snap_serial, fail_serial) = sweep(1);
    let (snap_parallel, mut fail_parallel) = sweep(4);
    assert_eq!(snap_serial, snap_parallel);
    assert_eq!(fail_serial.len(), 2);
    // run_parallel reports plan-order failures; serial reports
    // call-order. Same set either way.
    fail_parallel.sort();
    let mut fail_serial = fail_serial;
    fail_serial.sort();
    assert_eq!(fail_serial, fail_parallel);
}

/// An unknown workload surfaces as a config-class failure in the
/// sweep, not an abort.
#[test]
fn unknown_workload_cell_is_contained() {
    let mut r = Runner::new(tiny_scale());
    let stats = r.run_keyed(
        "bogus|case".to_string(),
        r.parallel_cfg(),
        &AgentMix::Parallel("not-an-app"),
    );
    assert_eq!(stats.cycles, 1, "placeholder for the failed cell");
    assert_eq!(r.failures().len(), 1);
    assert!(
        matches!(r.failures()[0].error, SimError::UnknownWorkload { .. }),
        "{:?}",
        r.failures()[0].error
    );
}

/// A journaled sweep resumes without re-running completed cells and
/// reproduces the identical memo table.
#[test]
fn journal_resume_skips_completed_cells_byte_for_byte() {
    let path = tmp("resume");
    let drive = |r: &mut Runner| {
        for app in ["swim", "mg"] {
            r.baseline(app);
            r.parallel(app, SchedulerKind::CasRasCrit, PredictorKind::None);
            r.replay(app, SchedulerKind::FrFcfs);
        }
    };

    // First pass: run everything under a journal.
    let mut first = Runner::new(tiny_scale());
    first.set_journal(SweepJournal::create(&path).unwrap());
    drive(&mut first);
    assert_eq!(first.runs_executed(), 6); // 4 runs + 2 captures
    assert_eq!(first.replays_executed(), 2);
    let reference = first.memo_snapshot();

    // Resume: every journaled cell preloads; only the captures (which
    // are intermediate artifacts, deliberately not journaled) re-run.
    let (journal, entries) = SweepJournal::resume(&path).unwrap();
    assert_eq!(entries.len(), 6, "4 runs + 2 replays journaled");
    let mut resumed = Runner::new(tiny_scale());
    resumed.preload(entries);
    resumed.set_journal(journal);
    drive(&mut resumed);
    assert_eq!(resumed.runs_executed(), 0, "no run or capture re-executed");
    assert_eq!(resumed.replays_executed(), 0, "no replay re-executed");
    assert_eq!(resumed.memo_snapshot(), reference);
    assert!(!resumed.has_failures());
    std::fs::remove_file(&path).unwrap();
}

/// Failed cells are not journaled: a resume retries exactly them.
#[test]
fn journal_resume_retries_only_the_failed_cell() {
    let path = tmp("retry");
    let mut first = Runner::new(tiny_scale());
    first.set_journal(SweepJournal::create(&path).unwrap());
    first.baseline("swim");
    first.parallel("swim", SchedulerKind::Wedged, PredictorKind::None);
    assert_eq!(first.failures().len(), 1);

    let (journal, entries) = SweepJournal::resume(&path).unwrap();
    assert_eq!(entries.len(), 1, "only the good cell was journaled");
    let mut resumed = Runner::new(tiny_scale());
    resumed.preload(entries);
    resumed.set_journal(journal);
    resumed.baseline("swim");
    assert_eq!(
        resumed.runs_executed(),
        0,
        "good cell came from the journal"
    );
    // The wedged cell is retried (and, being genuinely wedged, fails
    // again — but it was retried, which is the contract).
    resumed.parallel("swim", SchedulerKind::Wedged, PredictorKind::None);
    assert_eq!(resumed.runs_executed(), 1);
    assert_eq!(resumed.failures().len(), 1);
    std::fs::remove_file(&path).unwrap();
}
