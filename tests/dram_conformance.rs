//! DDR3 protocol-conformance properties: bandwidth bounds, refresh
//! cadence, and timing-window checks on the controller's observable
//! behavior under randomized traffic.

use critmem_common::{AccessKind, ChannelId, CoreId, MemRequest, SmallRng};
use critmem_dram::{AddressMapping, ChannelController, DramConfig, Fcfs, Interleaving};

/// Drives random reads through one channel; returns (completions with
/// cycles, total cycles elapsed, stats snapshot fields).
fn drive_random(seeds: &[u64]) -> (Vec<(u64, u64)>, u64, u64) {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    let mut to_send: Vec<MemRequest> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            // Channel-0 addresses: rows are 4 KB apart.
            let addr = (s % 2_048) * 4_096 + (s % 16) * 64;
            MemRequest::new(i as u64, addr, AccessKind::Read, CoreId((s % 8) as u8))
        })
        .collect();
    let total = to_send.len();
    let mut done = Vec::new();
    let mut cycles = 0u64;
    while done.len() < total && cycles < 2_000_000 {
        cycles += 1;
        if let Some(req) = to_send.pop() {
            let loc = map.locate(req.addr);
            if let Err(back) = ctl.enqueue(req, loc) {
                to_send.push(back); // queue full; retry next cycle
            }
        }
        for c in ctl.tick() {
            done.push((c.req.id, c.done_at));
        }
    }
    let refreshes = ctl.stats().refreshes;
    (done, cycles, refreshes)
}

#[test]
fn data_bus_bandwidth_is_never_exceeded() {
    // Each read occupies the bus for 4 DRAM cycles; N reads cannot
    // complete in fewer than 4N cycles on one channel.
    let seeds: Vec<u64> = (0..300).map(|i| i * 37 + 5).collect();
    let (done, cycles, _) = drive_random(&seeds);
    assert_eq!(done.len(), 300);
    assert!(
        cycles >= 4 * 300,
        "300 bursts in {cycles} cycles violates bus bandwidth"
    );
    // Completions are causally ordered in time.
    let max_done = done.iter().map(|&(_, d)| d).max().unwrap();
    assert!(max_done <= cycles + 20);
}

#[test]
fn refresh_cadence_matches_trefi() {
    // Idle channel for 10 * tREFI: each of the 4 ranks must have
    // refreshed about 10 times.
    let cfg = DramConfig::paper_baseline();
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    let trefi = cfg.preset.timing.t_refi;
    for _ in 0..10 * trefi {
        ctl.tick();
    }
    let refreshes = ctl.stats().refreshes;
    let expect = 10 * 4; // 10 intervals x 4 ranks
    assert!(
        (refreshes as i64 - expect as i64).abs() <= 8,
        "expected ~{expect} refreshes, got {refreshes}"
    );
}

#[test]
fn row_hits_have_lower_latency_than_conflicts() {
    // Sixteen sequential lines in one row (after the opening ACT, all
    // row hits) versus sixteen different rows of one bank.
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let service = |addrs: Vec<u64>| -> u64 {
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for (i, a) in addrs.iter().enumerate() {
            ctl.enqueue(
                MemRequest::new(i as u64, *a, AccessKind::Read, CoreId(0)),
                map.locate(*a),
            )
            .unwrap();
        }
        let mut cycles = 0;
        let mut finished = 0;
        while finished < addrs.len() && cycles < 100_000 {
            cycles += 1;
            finished += ctl.tick().len();
        }
        cycles
    };
    let same_row: Vec<u64> = (0..16).map(|i| i * 64).collect();
    let conflicts: Vec<u64> = (0..16).map(|i| i * 128 * 1024).collect();
    let fast = service(same_row);
    let slow = service(conflicts);
    assert!(
        slow > fast * 2,
        "row conflicts ({slow}) should cost far more than row hits ({fast})"
    );
}

#[test]
fn bank_parallelism_beats_serial_banks() {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let service = |addrs: Vec<u64>| -> u64 {
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for (i, a) in addrs.iter().enumerate() {
            ctl.enqueue(
                MemRequest::new(i as u64, *a, AccessKind::Read, CoreId(0)),
                map.locate(*a),
            )
            .unwrap();
        }
        let mut cycles = 0;
        let mut finished = 0;
        while finished < addrs.len() && cycles < 100_000 {
            cycles += 1;
            finished += ctl.tick().len();
        }
        cycles
    };
    // 8 requests spread across 8 banks (page interleave: +4 KB steps)
    // vs 8 row conflicts within one bank (+128 KB steps).
    let spread: Vec<u64> = (0..8).map(|i| i * 4 * 1024).collect();
    let serial: Vec<u64> = (0..8).map(|i| i * 128 * 1024).collect();
    let par = service(spread);
    let ser = service(serial);
    assert!(
        ser as f64 > par as f64 * 1.8,
        "bank-level parallelism should roughly halve service time ({par} vs {ser})"
    );
}

/// Checks one random read mix: it completes fully, never exceeds bus
/// bandwidth, and services nothing twice.
fn check_random_traffic(seeds: &[u64]) {
    let (done, cycles, _) = drive_random(seeds);
    assert_eq!(done.len(), seeds.len());
    assert!(cycles >= 4 * seeds.len() as u64);
    // Unique ids: nothing serviced twice.
    let mut ids: Vec<u64> = done.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), seeds.len());
}

/// Random read mixes always complete, never exceed bus bandwidth, and
/// refresh continues under load (8 seeded cases, formerly proptest).
#[test]
fn random_traffic_conserves_and_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xD3A7_0001);
    for _ in 0..8 {
        let len = rng.gen_range_usize(50..150);
        let seeds: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000_000)).collect();
        check_random_traffic(&seeds);
    }
}

/// Historical shrunk counterexample from the proptest era, kept as an
/// explicit regression case.
#[test]
fn random_traffic_regression_case() {
    let seeds: Vec<u64> = vec![
        340305, 673967, 70043, 452625, 526179, 982033, 911739, 930820, 208686, 925944, 908912,
        820727, 896724, 280194, 194450, 958146, 725010, 538972, 596178, 731920, 410781, 927855,
        71657, 955985, 713116, 360120, 365962, 600724, 674749, 93715, 607629, 775639, 776268,
        529662, 416305, 139156, 267507, 738745, 684273, 380987, 824416, 100553, 204802, 869540,
        43898, 275999, 144141, 196949, 118583, 842576, 885190, 419852, 627943, 202245, 824751,
        969958, 80517, 487537, 481663, 583406, 750346, 164720, 190797, 88180, 664961, 726401,
        639903, 560351, 763593, 177872, 300655, 375149, 110792, 521412, 557791, 960124, 479951,
        854247, 526721, 608223,
    ];
    check_random_traffic(&seeds);
}
