//! DDR3 protocol-conformance properties: bandwidth bounds, refresh
//! cadence, and timing-window checks on the controller's observable
//! behavior under randomized traffic.

use critmem_common::{AccessKind, ChannelId, CoreId, MemRequest, SmallRng};
use critmem_dram::{AddressMapping, ChannelController, DramConfig, Fcfs, Interleaving};

/// Drives random reads through one channel; returns (completions with
/// cycles, total cycles elapsed, stats snapshot fields).
fn drive_random(seeds: &[u64]) -> (Vec<(u64, u64)>, u64, u64) {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    let mut to_send: Vec<MemRequest> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            // Channel-0 addresses: rows are 4 KB apart.
            let addr = (s % 2_048) * 4_096 + (s % 16) * 64;
            MemRequest::new(i as u64, addr, AccessKind::Read, CoreId((s % 8) as u8))
        })
        .collect();
    let total = to_send.len();
    let mut done = Vec::new();
    let mut cycles = 0u64;
    while done.len() < total && cycles < 2_000_000 {
        cycles += 1;
        if let Some(req) = to_send.pop() {
            let loc = map.locate(req.addr);
            if let Err(back) = ctl.enqueue(req, loc) {
                to_send.push(back); // queue full; retry next cycle
            }
        }
        for c in ctl.tick() {
            done.push((c.req.id, c.done_at));
        }
    }
    let refreshes = ctl.stats().refreshes;
    (done, cycles, refreshes)
}

#[test]
fn data_bus_bandwidth_is_never_exceeded() {
    // Each read occupies the bus for 4 DRAM cycles; N reads cannot
    // complete in fewer than 4N cycles on one channel.
    let seeds: Vec<u64> = (0..300).map(|i| i * 37 + 5).collect();
    let (done, cycles, _) = drive_random(&seeds);
    assert_eq!(done.len(), 300);
    assert!(
        cycles >= 4 * 300,
        "300 bursts in {cycles} cycles violates bus bandwidth"
    );
    // Completions are causally ordered in time.
    let max_done = done.iter().map(|&(_, d)| d).max().unwrap();
    assert!(max_done <= cycles + 20);
}

#[test]
fn refresh_cadence_matches_trefi() {
    // Idle channel for 10 * tREFI: each of the 4 ranks must have
    // refreshed about 10 times.
    let cfg = DramConfig::paper_baseline();
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    let trefi = cfg.preset.timing.t_refi;
    for _ in 0..10 * trefi {
        ctl.tick();
    }
    let refreshes = ctl.stats().refreshes;
    let expect = 10 * 4; // 10 intervals x 4 ranks
    assert!(
        (refreshes as i64 - expect as i64).abs() <= 8,
        "expected ~{expect} refreshes, got {refreshes}"
    );
}

#[test]
fn row_hits_have_lower_latency_than_conflicts() {
    // Sixteen sequential lines in one row (after the opening ACT, all
    // row hits) versus sixteen different rows of one bank.
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let service = |addrs: Vec<u64>| -> u64 {
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for (i, a) in addrs.iter().enumerate() {
            ctl.enqueue(
                MemRequest::new(i as u64, *a, AccessKind::Read, CoreId(0)),
                map.locate(*a),
            )
            .unwrap();
        }
        let mut cycles = 0;
        let mut finished = 0;
        while finished < addrs.len() && cycles < 100_000 {
            cycles += 1;
            finished += ctl.tick().len();
        }
        cycles
    };
    let same_row: Vec<u64> = (0..16).map(|i| i * 64).collect();
    let conflicts: Vec<u64> = (0..16).map(|i| i * 128 * 1024).collect();
    let fast = service(same_row);
    let slow = service(conflicts);
    assert!(
        slow > fast * 2,
        "row conflicts ({slow}) should cost far more than row hits ({fast})"
    );
}

#[test]
fn bank_parallelism_beats_serial_banks() {
    let cfg = DramConfig::paper_baseline();
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let service = |addrs: Vec<u64>| -> u64 {
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        for (i, a) in addrs.iter().enumerate() {
            ctl.enqueue(
                MemRequest::new(i as u64, *a, AccessKind::Read, CoreId(0)),
                map.locate(*a),
            )
            .unwrap();
        }
        let mut cycles = 0;
        let mut finished = 0;
        while finished < addrs.len() && cycles < 100_000 {
            cycles += 1;
            finished += ctl.tick().len();
        }
        cycles
    };
    // 8 requests spread across 8 banks (page interleave: +4 KB steps)
    // vs 8 row conflicts within one bank (+128 KB steps).
    let spread: Vec<u64> = (0..8).map(|i| i * 4 * 1024).collect();
    let serial: Vec<u64> = (0..8).map(|i| i * 128 * 1024).collect();
    let par = service(spread);
    let ser = service(serial);
    assert!(
        ser as f64 > par as f64 * 1.8,
        "bank-level parallelism should roughly halve service time ({par} vs {ser})"
    );
}

/// Checks one random read mix: it completes fully, never exceeds bus
/// bandwidth, and services nothing twice.
fn check_random_traffic(seeds: &[u64]) {
    let (done, cycles, _) = drive_random(seeds);
    assert_eq!(done.len(), seeds.len());
    assert!(cycles >= 4 * seeds.len() as u64);
    // Unique ids: nothing serviced twice.
    let mut ids: Vec<u64> = done.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), seeds.len());
}

/// Random read mixes always complete, never exceed bus bandwidth, and
/// refresh continues under load (8 seeded cases, formerly proptest).
#[test]
fn random_traffic_conserves_and_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xD3A7_0001);
    for _ in 0..8 {
        let len = rng.gen_range_usize(50..150);
        let seeds: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000_000)).collect();
        check_random_traffic(&seeds);
    }
}

/// Services a request list through one audited channel (the shadow
/// protocol auditor recomputes every timing window independently) and
/// asserts the auditor stays silent; returns the service time.
fn audited_service(cfg: DramConfig, reqs: &[(u64, AccessKind)]) -> u64 {
    let map = AddressMapping::new(cfg.org, Interleaving::Page);
    let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
    ctl.enable_audit();
    for (i, (addr, kind)) in reqs.iter().enumerate() {
        ctl.enqueue(
            MemRequest::new(i as u64, *addr, *kind, CoreId(0)),
            map.locate(*addr),
        )
        .unwrap();
    }
    let mut cycles = 0;
    let mut finished = 0;
    while finished < reqs.len() && cycles < 100_000 {
        cycles += 1;
        finished += ctl.tick().len();
    }
    assert_eq!(finished, reqs.len(), "traffic must drain");
    ctl.finish_audit();
    assert!(
        ctl.take_audit_violation().is_none(),
        "auditor must stay silent on conforming traffic"
    );
    cycles
}

/// Single-line reads to `n` distinct banks of rank 0 (page
/// interleave: consecutive 4 KB rows walk the banks).
fn bank_sweep(n: u64) -> Vec<(u64, AccessKind)> {
    (0..n).map(|i| (i * 4 * 1024, AccessKind::Read)).collect()
}

/// tFAW is a rolling window over exactly four ACTs: with four banks
/// the window never binds (service time identical to a tFAW-disabled
/// device), while a fifth ACT must wait out the window.
#[test]
fn tfaw_binds_at_exactly_the_fifth_activate() {
    let with_faw = DramConfig::paper_baseline();
    let mut no_faw = with_faw;
    no_faw.preset.timing.t_faw = 0; // disabled (validated: 0 means off)
    assert!(with_faw.preset.timing.t_faw > 4 * with_faw.preset.timing.t_rrd);
    // Four ACTs: tRRD alone spaces them; the window holds 4, so tFAW
    // must not add a cycle.
    assert_eq!(
        audited_service(with_faw, &bank_sweep(4)),
        audited_service(no_faw, &bank_sweep(4)),
        "tFAW must be invisible at four activates"
    );
    // Five ACTs: the fifth must wait for the window to slide.
    let five_faw = audited_service(with_faw, &bank_sweep(5));
    let five_free = audited_service(no_faw, &bank_sweep(5));
    assert!(
        five_faw > five_free,
        "the fifth activate must pay the tFAW window ({five_faw} vs {five_free})"
    );
}

/// tRRD spaces ACTs to *different banks of the same rank*; shrinking
/// it must shrink a bank sweep's service time, and ACTs landing on a
/// different rank are not held by the first rank's window.
#[test]
fn trrd_spaces_activates_across_banks() {
    let base = DramConfig::paper_baseline();
    let mut tight = base;
    tight.preset.timing.t_rrd = 1; // t_faw (43) still >= 3 * t_rrd
    let spaced = audited_service(base, &bank_sweep(4));
    let packed = audited_service(tight, &bank_sweep(4));
    assert!(
        spaced > packed,
        "four same-rank ACTs must be tRRD-spaced ({spaced} vs {packed})"
    );
    // Split the same eight ACTs across two ranks: each rank's
    // tRRD/tFAW window now sees only four, so the split sweep must be
    // faster than eight ACTs hammering one rank.
    let map = AddressMapping::new(base.org, Interleaving::Page);
    let mut by_rank: Vec<Vec<u64>> = vec![Vec::new(); base.org.ranks_per_channel as usize];
    let mut addr = 0u64;
    while by_rank.iter().take(2).any(|v| v.len() < 4) && addr < 1 << 30 {
        let loc = map.locate(addr);
        let r = loc.rank.0 as usize;
        if r < 2 && by_rank[r].len() < 4 && !by_rank[r].contains(&(loc.bank.0 as u64)) {
            by_rank[r].push(addr);
        }
        addr += 4 * 1024;
    }
    let (r0, r1) = (by_rank[0].clone(), by_rank[1].clone());
    assert_eq!((r0.len(), r1.len()), (4, 4), "need 4 banks in each rank");
    let split: Vec<(u64, AccessKind)> = r0
        .iter()
        .zip(&r1)
        .flat_map(|(&a, &b)| [(a, AccessKind::Read), (b, AccessKind::Read)])
        .collect();
    let one_rank = audited_service(base, &bank_sweep(8));
    let two_ranks = audited_service(base, &split);
    assert!(
        two_ranks < one_rank,
        "per-rank ACT windows must not couple across ranks ({two_ranks} vs {one_rank})"
    );
}

/// tWTR separates a write burst from the next read CAS on the same
/// rank. The controller buffers writes behind reads, so the pair is
/// sequenced by hand: complete the write first, then enqueue a
/// same-row read the very next cycle — its CAS must wait out the
/// write→read turnaround, which vanishes on a tWTR-free device.
#[test]
fn twtr_separates_write_from_read() {
    let read_latency_after_write = |cfg: DramConfig| -> u64 {
        let map = AddressMapping::new(cfg.org, Interleaving::Page);
        let mut ctl = ChannelController::new(ChannelId(0), cfg, Box::new(Fcfs::new()));
        ctl.enable_audit();
        ctl.enqueue(
            MemRequest::new(0, 0, AccessKind::Write, CoreId(0)),
            map.locate(0),
        )
        .unwrap();
        let mut now = 0u64;
        let mut write_done = 0u64;
        while write_done == 0 && now < 100_000 {
            now += 1;
            if !ctl.tick().is_empty() {
                write_done = now;
            }
        }
        assert!(write_done > 0, "the buffered write must drain");
        ctl.enqueue(
            MemRequest::new(1, 64, AccessKind::Read, CoreId(0)),
            map.locate(64),
        )
        .unwrap();
        let mut read_done = 0u64;
        while read_done == 0 && now < 100_000 {
            now += 1;
            if !ctl.tick().is_empty() {
                read_done = now;
            }
        }
        assert!(read_done > 0, "the read must complete");
        ctl.finish_audit();
        assert!(
            ctl.take_audit_violation().is_none(),
            "auditor must stay silent on conforming write-read traffic"
        );
        read_done - write_done
    };
    let base = DramConfig::paper_baseline();
    let mut free = base;
    free.preset.timing.t_wtr = 0;
    let with_wtr = read_latency_after_write(base);
    let without = read_latency_after_write(free);
    assert!(
        with_wtr > without,
        "a same-row read behind a write must pay tWTR ({with_wtr} vs {without})"
    );
}

/// Historical shrunk counterexample from the proptest era, kept as an
/// explicit regression case.
#[test]
fn random_traffic_regression_case() {
    let seeds: Vec<u64> = vec![
        340305, 673967, 70043, 452625, 526179, 982033, 911739, 930820, 208686, 925944, 908912,
        820727, 896724, 280194, 194450, 958146, 725010, 538972, 596178, 731920, 410781, 927855,
        71657, 955985, 713116, 360120, 365962, 600724, 674749, 93715, 607629, 775639, 776268,
        529662, 416305, 139156, 267507, 738745, 684273, 380987, 824416, 100553, 204802, 869540,
        43898, 275999, 144141, 196949, 118583, 842576, 885190, 419852, 627943, 202245, 824751,
        969958, 80517, 487537, 481663, 583406, 750346, 164720, 190797, 88180, 664961, 726401,
        639903, 560351, 763593, 177872, 300655, 375149, 110792, 521412, 557791, 960124, 479951,
        854247, 526721, 608223,
    ];
    check_random_traffic(&seeds);
}
