//! End-to-end predictor behavior: CBP training through the real
//! commit stage, table-size/aliasing effects, periodic reset, and the
//! §5.1 naive-forwarding contrast.

use critmem::{AgentMix, PredictorKind, RunStats, Session, SystemConfig};
use critmem_predict::{CbpMetric, TableSize};
use critmem_sched::SchedulerKind;

fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
    Session::new(cfg, workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn cfg(instructions: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(instructions);
    cfg.cores = 4;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(4);
    cfg.max_cycles = 300_000_000;
    cfg
}

#[test]
fn cbp_learns_and_requests_become_critical() {
    let stats = run(
        cfg(4_000)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::cbp64(CbpMetric::Binary)),
        &AgentMix::Parallel("swim"),
    );
    let issued: u64 = stats.cores.iter().map(|c| c.issued_loads).sum();
    let critical: u64 = stats.cores.iter().map(|c| c.issued_critical_loads).sum();
    assert!(critical > 0, "CBP never marked a load");
    assert!(critical < issued, "CBP should not mark every load");
    // §3.1: queues hold critical loads a substantial share of time.
    let (one, many) = stats.critical_queue_fractions();
    assert!(
        one > 0.05,
        "critical loads should appear in queues ({one:.3})"
    );
    assert!(many <= one);
}

#[test]
fn observed_counter_widths_are_plausible() {
    // Table 5: Binary is one bit; stall metrics span >= 8 bits even at
    // small scale; TotalStallTime observes the largest values.
    let metric_max = |metric: CbpMetric| -> (u64, u32) {
        let stats = run(
            cfg(4_000)
                .with_scheduler(SchedulerKind::CasRasCrit)
                .with_predictor(PredictorKind::cbp64(metric)),
            &AgentMix::Parallel("art"),
        );
        stats
            .predictor_observed
            .iter()
            .flatten()
            .fold((0, 0), |acc, &(v, b)| (acc.0.max(v), acc.1.max(b)))
    };
    let (bin_max, bin_bits) = metric_max(CbpMetric::Binary);
    assert_eq!((bin_max, bin_bits), (1, 1));
    let (max_stall, stall_bits) = metric_max(CbpMetric::MaxStallTime);
    assert!(
        max_stall > 100,
        "stalls should exceed 100 cycles, got {max_stall}"
    );
    assert!(stall_bits >= 8);
    let (total, _) = metric_max(CbpMetric::TotalStallTime);
    assert!(total >= max_stall, "total stall accumulates beyond max");
}

#[test]
fn aliased_64_entry_table_tracks_unlimited_closely() {
    // §5.3.1: the 64-entry table performs within a whisker of the
    // unlimited table because static-load populations are small.
    let run_with = |size: TableSize| {
        run(
            cfg(5_000)
                .with_scheduler(SchedulerKind::CasRasCrit)
                .with_predictor(PredictorKind::Cbp {
                    metric: CbpMetric::MaxStallTime,
                    size,
                    reset_interval: None,
                }),
            &AgentMix::Parallel("mg"),
        )
        .cycles as f64
    };
    let small = run_with(TableSize::Entries(64));
    let unlimited = run_with(TableSize::Unlimited);
    let ratio = small / unlimited;
    assert!(
        (0.9..1.1).contains(&ratio),
        "64-entry vs unlimited should be within 10% ({ratio:.3})"
    );
}

#[test]
fn periodic_reset_clears_saturation_without_breaking_anything() {
    let stats = run(
        cfg(10_000)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::Cbp {
                metric: CbpMetric::Binary,
                size: TableSize::Entries(64),
                reset_interval: Some(5_000),
            }),
        &AgentMix::Parallel("swim"),
    );
    // The run spans several reset intervals, and the predictor kept
    // marking loads after each reset.
    let critical: u64 = stats.cores.iter().map(|c| c.issued_critical_loads).sum();
    assert!(
        stats.cycles > 3 * 5_000,
        "run too short to cover resets: {}",
        stats.cycles
    );
    assert!(critical > 0);
}

#[test]
fn naive_forwarding_marks_queued_requests_but_learns_nothing() {
    let mut c = cfg(4_000).with_scheduler(SchedulerKind::CasRasCrit);
    c.naive_forwarding = true;
    let stats = run(c, &AgentMix::Parallel("art"));
    // Requests got promoted in the queues...
    let (one, _) = stats.critical_queue_fractions();
    assert!(one > 0.0, "naive forwarding should promote queued requests");
    // ...but no load ever *issues* critical (there is no predictor).
    let critical: u64 = stats.cores.iter().map(|c| c.issued_critical_loads).sum();
    assert_eq!(critical, 0);
}

#[test]
fn clpt_marks_are_disjoint_from_dram_boundness() {
    // The paper's §5.3.3 finding: CLPT targets a load population
    // largely complementary to the CBP's. In the synthetic workloads
    // the heavily-consumed loads are cache-resident, so despite CLPT
    // marking loads at issue, the DRAM queues see few critical ones.
    let stats = run(
        cfg(4_000)
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::Clpt(critmem_predict::ClptMode::Binary {
                threshold: 3,
            })),
        &AgentMix::Parallel("swim"),
    );
    let issued_crit: u64 = stats.cores.iter().map(|c| c.issued_critical_loads).sum();
    assert!(
        issued_crit > 0,
        "CLPT should mark the heavily-consumed loads"
    );
    let (one, _) = stats.critical_queue_fractions();
    assert!(
        one < 0.2,
        "CLPT-marked loads should rarely reach DRAM (queue-critical {one:.3})"
    );
}
