//! Forward-progress watchdog: never fires on healthy tier-1 workloads
//! under any ranking metric, always fires (with a complete diagnostic
//! snapshot) on an artificially wedged memory controller.

use critmem::config::{AgentMix, PredictorKind, SystemConfig};
use critmem::{RunStats, Session, System};
use critmem_common::{SimError, WatchdogReason};
use critmem_dram::DramSystem;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use critmem_trace::{ReplayConfig, TraceReplayer};

fn small_cfg(instructions: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline(instructions);
    cfg.cores = 2;
    cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(2);
    cfg
}

fn try_run(cfg: SystemConfig, workload: &AgentMix) -> Result<RunStats, SimError> {
    Session::new(cfg, workload).run().map(|out| out.stats)
}

/// The watchdog's thresholds sit far outside healthy behavior: a
/// seeded sweep over every CBP ranking metric and every tier-1 app
/// must complete without a single trip.
#[test]
fn never_fires_on_healthy_workloads_under_all_metrics() {
    let metrics = [
        CbpMetric::Binary,
        CbpMetric::BlockCount,
        CbpMetric::LastStallTime,
        CbpMetric::MaxStallTime,
        CbpMetric::TotalStallTime,
    ];
    for app in ["art", "mg", "swim"] {
        for metric in metrics {
            let cfg = small_cfg(1_500)
                .with_scheduler(SchedulerKind::CasRasCrit)
                .with_predictor(PredictorKind::cbp64(metric));
            assert!(cfg.watchdog.enabled(), "default watchdog must be armed");
            let stats = try_run(cfg, &AgentMix::Parallel(app)).unwrap_or_else(|e| {
                panic!("watchdog fired on healthy {app}/{metric:?}: {e}");
            });
            assert!(
                stats.cores.iter().all(|c| c.committed >= 1_500),
                "{app}/{metric:?} did not finish"
            );
        }
    }
}

/// A scheduler that never issues a command is the canonical livelock:
/// the watchdog must catch it and the snapshot must carry the full
/// diagnosis (per-core state, MSHRs, per-bank queues).
#[test]
fn wedged_scheduler_trips_with_complete_snapshot() {
    let cfg = small_cfg(5_000).with_scheduler(SchedulerKind::Wedged);
    let err = try_run(cfg, &AgentMix::Parallel("swim"))
        .expect_err("a wedged controller must trip the watchdog");
    let SimError::Watchdog(snap) = err else {
        panic!("expected a watchdog error, got {err:?}");
    };
    assert!(
        matches!(
            snap.reason,
            WatchdogReason::StarvedRequest { .. } | WatchdogReason::NoCommit { .. }
        ),
        "unexpected trip reason: {:?}",
        snap.reason
    );
    assert!(snap.cycle > 0);
    assert_eq!(snap.committed.len(), 2, "one commit count per core");
    assert_eq!(snap.rob_head_pc.len(), 2, "one ROB head PC per core");
    assert!(
        snap.rob_head_pc.iter().any(|pc| pc.is_some()),
        "a stuck core must have a blocked ROB head"
    );
    assert!(snap.mshr_occupancy > 0, "stuck misses must occupy MSHRs");
    assert!(
        !snap.bank_queues.is_empty(),
        "wedged requests must be visible in the bank queues"
    );
    assert!(snap.bank_queues.iter().all(|b| b.queued > 0));
    let werr = SimError::Watchdog(snap);
    assert_eq!(werr.exit_code(), 3);
    let rendered = werr.to_string();
    assert!(rendered.contains("bank"), "{rendered}");
    assert!(rendered.contains("cycle"), "{rendered}");
}

/// The cycle-budget guard is a watchdog error too (it used to be a
/// bare assert), so a too-small budget is reported, not aborted.
#[test]
fn cycle_budget_overrun_is_a_typed_error() {
    let mut cfg = small_cfg(50_000);
    cfg.max_cycles = 2_000; // far too small to finish
    let err =
        try_run(cfg, &AgentMix::Parallel("swim")).expect_err("budget overrun must be an error");
    match err {
        SimError::Watchdog(snap) => {
            assert_eq!(
                snap.reason,
                WatchdogReason::CycleLimit { max_cycles: 2_000 }
            );
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

/// The replay path carries the same protection: a wedged scheduler on
/// a captured trace is caught instead of spinning forever.
#[test]
fn replay_watchdog_catches_a_wedged_scheduler() {
    let cfg = small_cfg(1_500);
    let trace = Session::new(cfg.clone(), &AgentMix::Parallel("swim"))
        .traced("swim")
        .run()
        .expect("capture must succeed")
        .observer
        .into_trace();
    assert!(!trace.records.is_empty(), "swim must miss the L2");
    let dram = DramSystem::new(cfg.dram, |_| Box::new(critmem_sched::Wedge));
    let err = TraceReplayer::new(trace, dram, ReplayConfig::default())
        .expect("same topology")
        .try_run()
        .expect_err("wedged replay must trip the watchdog");
    let SimError::Watchdog(snap) = err else {
        panic!("expected a watchdog error, got {err:?}");
    };
    assert!(matches!(
        snap.reason,
        WatchdogReason::StarvedRequest { .. } | WatchdogReason::NoCommit { .. }
    ));
    assert!(
        !snap.bank_queues.is_empty(),
        "stuck requests must appear in the snapshot"
    );
}

/// Disabling the watchdog really disables it: the wedged run then hits
/// the cycle budget instead of the progress checks.
#[test]
fn disabled_watchdog_falls_through_to_cycle_budget() {
    let mut cfg = small_cfg(5_000).with_scheduler(SchedulerKind::Wedged);
    cfg.watchdog = critmem_common::WatchdogConfig::disabled();
    cfg.max_cycles = 100_000;
    let err = try_run(cfg, &AgentMix::Parallel("swim")).expect_err("still wedged");
    match err {
        SimError::Watchdog(snap) => assert_eq!(
            snap.reason,
            WatchdogReason::CycleLimit {
                max_cycles: 100_000
            }
        ),
        other => panic!("expected cycle-limit watchdog, got {other:?}"),
    }
}

/// `System::try_with_observer` reports bad workloads as typed config
/// errors with the config-class exit code.
#[test]
fn unknown_workloads_are_config_errors() {
    let cfg = small_cfg(1_000);
    let err = System::try_new(cfg, &AgentMix::Parallel("not-an-app"))
        .map(|_| ())
        .expect_err("unknown app must be rejected");
    assert!(matches!(err, SimError::UnknownWorkload { .. }), "{err:?}");
    assert_eq!(err.exit_code(), 2);
}
