//! End-to-end contract of the scheduler-zoo additions (BLISS and the
//! MetaSwitch meta-scheduler): mode switches really happen under
//! multiprogrammed load, checkpoint round-trips are bit-exact across a
//! mid-run mode switch, results are byte-identical under per-tick
//! sharding and skip-ahead, and BLISS bounds the maximum slowdown
//! where the criticality-first Crit-CASRAS ordering does not.

use critmem::config::{AgentMix, PredictorKind, SystemConfig};
use critmem::metrics::{max_slowdown, weighted_speedup};
use critmem::{Checkpoint, RunStats, Session};
use critmem_common::codec::ByteWriter;
use critmem_predict::CbpMetric;
use critmem_sched::{BlissConfig, MetaSwitchConfig, SchedulerKind};
use critmem_workloads::bundle;

const INSTRUCTIONS: u64 = 1_500;
const BUNDLE: &str = "AELV";

/// A MetaSwitch pairing with watermarks tight enough that the quick
/// multiprogrammed bundles cross them repeatedly, so mid-run mode
/// switches are guaranteed, not incidental.
const AGGRESSIVE_META: SchedulerKind = SchedulerKind::MetaSwitch {
    perf: &SchedulerKind::CasRasCrit,
    fair: &SchedulerKind::Bliss(BlissConfig::DEFAULT),
    cfg: MetaSwitchConfig {
        high_occupancy: 2,
        low_occupancy: 1,
        stall_watermark: 300,
        low_stall: 60,
        min_residency: 200,
    },
};

fn bundle_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::multiprogrammed_baseline(INSTRUCTIONS);
    cfg.max_cycles = 1_000_000_000;
    cfg
}

fn encode(stats: &RunStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    stats.encode(&mut w);
    w.into_bytes()
}

fn bundle_stats(cfg: SystemConfig) -> RunStats {
    Session::new(cfg, &AgentMix::Bundle(BUNDLE))
        .run()
        .expect("bundle run")
        .stats
}

/// IPC of each bundle app running alone on the single-core variant of
/// the same platform — the slowdown denominator (Figure 12's
/// normalization).
fn alone_ipcs() -> Vec<f64> {
    bundle(BUNDLE)
        .expect("bundle exists")
        .apps
        .iter()
        .map(|&app| {
            let mut cfg = bundle_cfg();
            cfg.cores = 1;
            cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
            cfg.hierarchy.l2_mshrs = 32;
            let stats = Session::new(cfg, &AgentMix::Alone(app))
                .run()
                .expect("alone run")
                .stats;
            stats.ipc(0)
        })
        .collect()
}

/// The meta-scheduler must actually flip modes under bundle load —
/// otherwise every other property here is vacuous. The switch counter
/// is exposed through the `sched_` metrics registry.
#[test]
fn metaswitch_switches_modes_under_bundle_load() {
    let cfg = bundle_cfg()
        .with_scheduler(AGGRESSIVE_META)
        .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
        .with_sampling(10_000);
    let stats = bundle_stats(cfg);
    let series = stats.series.as_ref().expect("sampled series");
    let last = series.len() - 1;
    let switches: f64 = (0..8)
        .filter_map(|ch| series.value(last, &format!("dram.ch{ch}.sched_mode_switches")))
        .sum();
    assert!(
        switches >= 2.0,
        "expected repeated mode switches, saw {switches}"
    );
    // Residency accounting covers both modes once switching starts.
    let fair_res: f64 = (0..8)
        .filter_map(|ch| series.value(last, &format!("dram.ch{ch}.sched_fair_residency")))
        .sum();
    assert!(fair_res > 0.0, "fairness-mode stints must accumulate");
}

/// Checkpointing mid-run — after mode switches have occurred — and
/// restoring under the same configuration must be invisible: the
/// continued run's statistics are bit-identical to the uninterrupted
/// run. This exercises the MetaSwitch and BLISS `save_state` /
/// `load_state` codecs end to end (mode, hysteresis deadline, streak
/// and blacklist state all ride inside the CMCK artifact).
#[test]
fn checkpoint_round_trip_is_bit_exact_across_a_mode_switch() {
    let wl = AgentMix::Bundle(BUNDLE);
    let cfg = bundle_cfg()
        .with_scheduler(AGGRESSIVE_META)
        .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
    let cold = Session::new(cfg.clone(), &wl).run().expect("cold").stats;
    let boundary = cold.cycles / 2;
    let ckpt = Session::new(cfg.clone(), &wl)
        .checkpoint_at(boundary)
        .run_to_checkpoint()
        .expect("warmup");
    // Round-trip the on-disk CMCK format so codec framing is covered.
    let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("wire round trip");
    let warm = Session::from_checkpoint(&ckpt, cfg, &wl)
        .run()
        .expect("warm")
        .stats;
    assert_eq!(
        encode(&cold),
        encode(&warm),
        "mid-run restore diverged from the uninterrupted run"
    );
}

/// Per-tick channel sharding and event-driven skip-ahead change wall
/// clock only: the BLISS clearing boundary and the MetaSwitch switch
/// schedule must land on identical cycles either way.
#[test]
fn sharding_and_skip_ahead_leave_results_byte_identical() {
    for sched in [
        SchedulerKind::Bliss(BlissConfig::DEFAULT),
        SchedulerKind::DEFAULT_META,
    ] {
        let base = bundle_cfg()
            .with_scheduler(sched)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let reference = encode(&bundle_stats(base.clone()));
        let mut sharded = base.clone();
        sharded.shards = 2;
        assert_eq!(
            reference,
            encode(&bundle_stats(sharded)),
            "{}: --shards 2 diverged",
            sched.name()
        );
        let mut no_skip = base.clone();
        no_skip.skip_ahead = false;
        assert_eq!(
            reference,
            encode(&bundle_stats(no_skip)),
            "{}: --no-skip-ahead diverged",
            sched.name()
        );
    }
}

/// The starvation regression the frontier chart summarizes: under the
/// same multiprogrammed bundle, BLISS's blacklist bounds the worst
/// application's slowdown below what the criticality-above-all
/// Crit-CASRAS ordering allows, while both remain real schedulers
/// (positive weighted speedup).
#[test]
fn bliss_bounds_max_slowdown_where_crit_casras_does_not() {
    let alone = alone_ipcs();
    let crit = bundle_stats(
        bundle_cfg()
            .with_scheduler(SchedulerKind::CritCasRas)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime)),
    );
    let bliss =
        bundle_stats(bundle_cfg().with_scheduler(SchedulerKind::Bliss(BlissConfig::DEFAULT)));
    let ms_crit = max_slowdown(&crit, &alone);
    let ms_bliss = max_slowdown(&bliss, &alone);
    assert!(
        ms_bliss < ms_crit,
        "BLISS must bound the worst slowdown: BLISS {ms_bliss:.3} vs Crit-CASRAS {ms_crit:.3}"
    );
    assert!(weighted_speedup(&bliss, &alone) > 0.0);
    assert!(weighted_speedup(&crit, &alone) > 0.0);
}
