//! End-to-end validation of the trace capture/replay subsystem
//! (`critmem-trace`) against the execution-driven simulator.
//!
//! Covers the subsystem's acceptance bar: determinism (identical
//! executions serialize to byte-identical traces), exactness
//! (same-configuration replay reproduces the capture run's per-channel
//! DRAM statistics), topology safety (mismatched fingerprints are
//! rejected), and fidelity (the replay path ranks schedulers the same
//! way the execution-driven path does).

use critmem::config::{AgentMix, PredictorKind, SystemConfig};
use critmem::experiments::{Runner, Scale};
use critmem::Session;
use critmem_dram::DramSystem;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;
use critmem_trace::{Fingerprint, ReplayConfig, Trace, TraceError, TraceReplayer, TraceSink};

const INSTRUCTIONS: u64 = 2_000;
const APP: &str = "swim";

fn run_traced(cfg: SystemConfig, workload: &AgentMix, source: &str) -> (critmem::RunStats, Trace) {
    let out = Session::new(cfg, workload)
        .traced(source)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    (out.stats, out.observer.into_trace())
}

fn capture_cfg(scheduler: SchedulerKind) -> SystemConfig {
    SystemConfig::paper_baseline(INSTRUCTIONS)
        .with_scheduler(scheduler)
        .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
}

/// Captures `APP` under `scheduler`, then replays the trace through a
/// fresh DRAM system built with the same scheduler, harvesting replay
/// statistics at the capture run's final cycle (the execution run stops
/// with requests still in flight the moment every core commits its
/// target, so the comparison must cut both runs at the same cycle).
/// Returns the execution-driven stats and the replay stats.
fn capture_and_replay_same_config(
    scheduler: SchedulerKind,
) -> (critmem::system::RunStats, critmem_trace::ReplayStats) {
    let cfg = capture_cfg(scheduler);
    let dram_cfg = cfg.dram;
    let threads = cfg.cores;
    let (stats, trace) = run_traced(cfg, &AgentMix::Parallel(APP), APP);
    assert!(!trace.records.is_empty(), "capture produced no requests");
    let dram = DramSystem::new(dram_cfg, |ch| scheduler.build(threads, u64::from(ch.0)));
    let replay_cfg = ReplayConfig {
        stop_at_cycle: Some(stats.cycles),
        ..ReplayConfig::default()
    };
    let replay = TraceReplayer::new(trace, dram, replay_cfg)
        .expect("identical topology must be accepted")
        .run();
    (stats, replay)
}

#[test]
fn identical_executions_serialize_to_byte_identical_traces() {
    let run = || {
        let (_, trace) = run_traced(
            capture_cfg(SchedulerKind::FrFcfs),
            &AgentMix::Parallel(APP),
            APP,
        );
        trace
    };
    let (a, b) = (run(), run());
    assert!(!a.records.is_empty());
    assert_eq!(a.records.len(), b.records.len());
    let (bytes_a, bytes_b) = (a.to_bytes().unwrap(), b.to_bytes().unwrap());
    assert_eq!(
        bytes_a, bytes_b,
        "identical executions must serialize identically"
    );
    // And the serialized form round-trips losslessly.
    let back = Trace::read_from(&mut std::io::Cursor::new(&bytes_a)).unwrap();
    assert_eq!(back.records, a.records);
    assert_eq!(back.fingerprint, a.fingerprint);
}

#[test]
fn same_config_replay_is_exact_for_frfcfs() {
    let (exec, replay) = capture_and_replay_same_config(SchedulerKind::FrFcfs);
    assert_exact(&exec, &replay);
}

#[test]
fn same_config_replay_is_exact_for_casras_crit() {
    let (exec, replay) = capture_and_replay_same_config(SchedulerKind::CasRasCrit);
    assert_exact(&exec, &replay);
}

/// Per-channel request counts must match exactly; row hits must match
/// within the ±1% acceptance bound (they are in fact exact, because the
/// replayer reproduces the capture's enqueue cycles through an
/// identical clock divider — assert that stronger property).
fn assert_exact(exec: &critmem::system::RunStats, replay: &critmem_trace::ReplayStats) {
    assert_eq!(exec.channels.len(), replay.channels.len());
    for (ch, (e, r)) in exec.channels.iter().zip(&replay.channels).enumerate() {
        assert_eq!(
            e.reads_completed + e.writes_completed,
            r.reads_completed + r.writes_completed,
            "channel {ch}: request count diverged"
        );
        assert_eq!(
            e.reads_completed, r.reads_completed,
            "channel {ch}: reads diverged"
        );
        assert_eq!(e.row_hits, r.row_hits, "channel {ch}: row hits diverged");
        assert_eq!(
            e.row_misses, r.row_misses,
            "channel {ch}: row misses diverged"
        );
        assert_eq!(
            e.row_conflicts, r.row_conflicts,
            "channel {ch}: row conflicts diverged"
        );
    }
    assert_eq!(
        replay.queue_full_retries, 0,
        "same-config replay can never bounce"
    );
}

#[test]
fn replay_ranks_schedulers_like_execution() {
    // The fidelity claim behind scheduler-only studies: sweeping
    // schedulers over a captured trace must pick the same winner (by
    // mean read service latency) as re-running the full simulator.
    let mut r = Runner::new(Scale {
        instructions: INSTRUCTIONS,
        ..Scale::quick()
    });
    let mean_lat = |s: &critmem_dram::ChannelStats| {
        s.read_latency_sum as f64 / s.reads_completed.max(1) as f64
    };
    let exec_lat = |r: &mut Runner, sched| {
        let stats = r.parallel(APP, sched, PredictorKind::cbp64(CbpMetric::MaxStallTime));
        let lat: f64 = stats.channels.iter().map(mean_lat).sum();
        lat / stats.channels.len() as f64
    };
    let replay_lat = |r: &mut Runner, sched| {
        let stats = r.replay(APP, sched);
        let lat: f64 = stats.channels.iter().map(mean_lat).sum();
        lat / stats.channels.len() as f64
    };

    let exec_base = exec_lat(&mut r, SchedulerKind::FrFcfs);
    let exec_crit = exec_lat(&mut r, SchedulerKind::CasRasCrit);
    let replay_base = replay_lat(&mut r, SchedulerKind::FrFcfs);
    let replay_crit = replay_lat(&mut r, SchedulerKind::CasRasCrit);

    assert_eq!(
        exec_crit < exec_base,
        replay_crit < replay_base,
        "replay ordering (crit {replay_crit:.1} vs base {replay_base:.1}) disagrees with \
         execution ordering (crit {exec_crit:.1} vs base {exec_base:.1})"
    );
    // Criticality-aware replay must also serve critical reads faster
    // than the criticality-blind baseline replay on the same arrivals.
    let crit = r.replay(APP, SchedulerKind::CasRasCrit);
    let base = r.replay(APP, SchedulerKind::FrFcfs);
    assert!(
        crit.critical_reads > 0,
        "capture carried no criticality annotations"
    );
    assert!(
        crit.mean_critical_read_latency() < base.mean_critical_read_latency(),
        "CASRAS-Crit replay should prioritize critical reads \
         ({:.1} vs {:.1} under FR-FCFS)",
        crit.mean_critical_read_latency(),
        base.mean_critical_read_latency()
    );
}

#[test]
fn mismatched_topology_is_rejected_end_to_end() {
    let cfg = capture_cfg(SchedulerKind::FrFcfs);
    let (_, trace) = run_traced(cfg.clone(), &AgentMix::Parallel(APP), APP);

    // A DRAM system with a different channel count must be refused.
    let mut narrow = cfg.dram;
    narrow.org.channels = cfg.dram.org.channels / 2;
    assert!(narrow.org.channels != cfg.dram.org.channels);
    let dram = DramSystem::new(narrow, |_| Box::new(critmem_sched::FrFcfs::new()));
    match TraceReplayer::new(trace, dram, ReplayConfig::default()) {
        Err(TraceError::FingerprintMismatch(msg)) => {
            assert!(
                msg.contains("channels"),
                "diagnostic should name the field: {msg}"
            );
        }
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
}

#[test]
fn trace_files_survive_disk_round_trip() {
    let (_, trace) = run_traced(
        capture_cfg(SchedulerKind::FrFcfs),
        &AgentMix::Parallel(APP),
        APP,
    );
    let dir = std::env::temp_dir();
    let path = dir.join(format!("critmem-trace-test-{}.cmtr", std::process::id()));
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.records, trace.records);
    assert_eq!(loaded.fingerprint, trace.fingerprint);
    assert_eq!(loaded.source, trace.source);
}

#[test]
fn sink_observer_matches_run_traced() {
    // `Session::traced` is a convenience wrapper; wiring a `TraceSink`
    // observer manually through `Session::observer` must capture the
    // same stream.
    let cfg = capture_cfg(SchedulerKind::FrFcfs);
    let fp = Fingerprint::of(cfg.cores, cfg.cpu_mhz, &cfg.dram);
    let sink = TraceSink::new(fp, APP);
    let workload = AgentMix::Parallel(APP);
    let manual = Session::new(cfg.clone(), &workload)
        .observer(sink)
        .run()
        .expect("manual capture")
        .observer
        .into_trace();
    let (_, auto) = run_traced(cfg, &workload, APP);
    assert_eq!(manual.records, auto.records);
}
