//! Design-space walk (§5.6): how the value of criticality information
//! changes with memory parallelism (ranks per channel) and processor
//! buffering (load-queue size).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use critmem::{AgentMix, PredictorKind, RunStats, Session, SystemConfig};
use critmem_dram::timing::preset_by_name;
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
    Session::new(cfg, workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn measure(cfg: SystemConfig, workload: &AgentMix) -> (u64, u64) {
    let base = run(cfg.clone(), workload);
    let crit = run(
        cfg.with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime)),
        workload,
    );
    (base.cycles, crit.cycles)
}

fn main() {
    let instructions = 10_000;
    let workload = AgentMix::Parallel("mg");

    println!("rank sweep (DDR3-2133, app = mg): fewer ranks => more contention");
    for ranks in [1u8, 2, 4] {
        let mut cfg = SystemConfig::paper_baseline(instructions);
        cfg.dram.preset = preset_by_name("DDR3-2133").expect("preset");
        cfg.dram.org.ranks_per_channel = ranks;
        let (base, crit) = measure(cfg, &workload);
        println!(
            "  {ranks} rank(s): criticality gain {:+.1}%",
            (base as f64 / crit as f64 - 1.0) * 100.0
        );
    }

    println!("\nload-queue sweep (app = mg): bigger LQ absorbs some stalls");
    for lq in [32usize, 48, 64] {
        let mut cfg = SystemConfig::paper_baseline(instructions);
        cfg.core.lq_entries = lq;
        let (base, crit) = measure(cfg, &workload);
        println!(
            "  LQ {lq:>2}: criticality gain {:+.1}%",
            (base as f64 / crit as f64 - 1.0) * 100.0
        );
    }

    println!("\ndevice sweep (4 ranks, app = mg): trends hold across speed grades");
    for dev in ["DDR3-1066", "DDR3-1600", "DDR3-2133"] {
        let mut cfg = SystemConfig::paper_baseline(instructions);
        cfg.dram.preset = preset_by_name(dev).expect("preset");
        let (base, crit) = measure(cfg, &workload);
        println!(
            "  {dev}: criticality gain {:+.1}%",
            (base as f64 / crit as f64 - 1.0) * 100.0
        );
    }
}
