//! Multiprogrammed throughput and fairness (§5.8.2).
//!
//! Runs the RFGI bundle (art1 - mcf - mg1 - is: one cache-sensitive
//! app against three memory hogs) on the quad-core, dual-channel
//! configuration under PAR-BS, TCM, and the paper's criticality-aware
//! scheduler, reporting weighted speedup and maximum slowdown.
//!
//! ```text
//! cargo run --release --example multiprogrammed
//! ```

use critmem::metrics::{max_slowdown, weighted_speedup};
use critmem::{AgentMix, PredictorKind, RunStats, Session, SystemConfig};
use critmem_predict::CbpMetric;
use critmem_sched::{SchedulerKind, TcmTiebreak};
use critmem_workloads::bundle;

fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
    Session::new(cfg, workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn main() {
    let instructions = 12_000;
    let bundle_name = "RFGI";
    let b = bundle(bundle_name).expect("known bundle");
    println!(
        "bundle {bundle_name}: {:?}, {instructions} instructions/app\n",
        b.apps
    );

    // Per-app alone IPCs on the PAR-BS baseline configuration.
    let alone: Vec<f64> = b
        .apps
        .iter()
        .map(|&app| {
            let mut cfg = SystemConfig::multiprogrammed_baseline(instructions);
            cfg.cores = 1;
            cfg.hierarchy = critmem_cache::HierarchyConfig::paper_baseline(1);
            cfg.hierarchy.l2_mshrs = 32;
            let stats = run(cfg, &AgentMix::Alone(app));
            let ipc = stats.ipc(0);
            println!("  alone IPC {app:<7} = {ipc:.3}");
            ipc
        })
        .collect();

    let schedulers: Vec<(&str, SchedulerKind, PredictorKind)> = vec![
        (
            "PAR-BS",
            SchedulerKind::ParBs { marking_cap: 5 },
            PredictorKind::None,
        ),
        ("FR-FCFS", SchedulerKind::FrFcfs, PredictorKind::None),
        (
            "TCM",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::FrFcfs,
            },
            PredictorKind::None,
        ),
        (
            "MaxStallTime",
            SchedulerKind::CasRasCrit,
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
        ),
        (
            "TCM+MaxStallTime",
            SchedulerKind::Tcm {
                tiebreak: TcmTiebreak::CritFrFcfs,
            },
            PredictorKind::cbp64(CbpMetric::MaxStallTime),
        ),
    ];

    println!();
    let mut ws_parbs = None;
    for (name, sched, pred) in schedulers {
        let cfg = SystemConfig::multiprogrammed_baseline(instructions)
            .with_scheduler(sched)
            .with_predictor(pred);
        let stats = run(cfg, &AgentMix::Bundle(bundle_name));
        let ws = weighted_speedup(&stats, &alone);
        let ms = max_slowdown(&stats, &alone);
        let ws_parbs = *ws_parbs.get_or_insert(ws);
        println!(
            "{name:<17} weighted speedup {ws:.3} ({:+.1}% vs PAR-BS), max slowdown {ms:.2}",
            (ws / ws_parbs - 1.0) * 100.0
        );
    }
}
