//! Quickstart: measure the paper's headline result on one workload.
//!
//! Runs the `swim` parallel workload on the 8-core CMP twice — once
//! under baseline FR-FCFS and once with the 64-entry MaxStallTime
//! Commit Block Predictor feeding the CASRAS-Crit scheduler — and
//! reports the speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use critmem::{run, PredictorKind, SystemConfig, WorkloadKind};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn main() {
    let instructions = 20_000;
    let workload = WorkloadKind::Parallel("swim");

    println!("simulating swim on 8 cores, {instructions} instructions/core ...");

    // Baseline: FR-FCFS, no criticality information.
    let baseline_cfg = SystemConfig::paper_baseline(instructions);
    let baseline = run(baseline_cfg.clone(), &workload);

    // The paper's design: a tiny per-core CBP + a lean criticality-
    // aware FR-FCFS (criticality bits prepended to the age comparator).
    let crit_cfg = baseline_cfg
        .with_scheduler(SchedulerKind::CasRasCrit)
        .with_predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime));
    let crit = run(crit_cfg, &workload);

    let speedup = baseline.cycles as f64 / crit.cycles as f64;
    println!();
    println!("FR-FCFS baseline : {:>12} cycles", baseline.cycles);
    println!("MaxStallTime CBP : {:>12} cycles", crit.cycles);
    println!("speedup          : {:+.1}%", (speedup - 1.0) * 100.0);
    println!();
    println!(
        "ROB head blocked by long-latency loads {:.1}% of cycles (baseline)",
        baseline.blocked_cycle_fraction() * 100.0
    );
    if let (Some(c), Some(n)) = (
        crit.miss_latency_critical(),
        crit.miss_latency_noncritical(),
    ) {
        println!("L2 miss latency with criticality scheduling: critical {c:.0} vs non-critical {n:.0} CPU cycles");
    }
}
