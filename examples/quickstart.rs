//! Quickstart: measure the paper's headline result on one workload.
//!
//! Runs the `swim` parallel workload on the 8-core CMP twice — once
//! under baseline FR-FCFS and once with the 64-entry MaxStallTime
//! Commit Block Predictor feeding the CASRAS-Crit scheduler — and
//! reports the speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use critmem::{AgentMix, PredictorKind, Session, SystemConfig};
use critmem_predict::CbpMetric;
use critmem_sched::SchedulerKind;

fn main() {
    let instructions = 20_000;
    let workload = AgentMix::Parallel("swim");

    println!("simulating swim on 8 cores, {instructions} instructions/core ...");

    // Baseline: FR-FCFS, no criticality information.
    let baseline_cfg = SystemConfig::paper_baseline(instructions);
    let baseline = Session::new(baseline_cfg.clone(), &workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats;

    // The paper's design: a tiny per-core CBP + a lean criticality-
    // aware FR-FCFS (criticality bits prepended to the age comparator).
    let crit = Session::new(baseline_cfg, &workload)
        .scheduler(SchedulerKind::CasRasCrit)
        .predictor(PredictorKind::cbp64(CbpMetric::MaxStallTime))
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats;

    let speedup = baseline.cycles as f64 / crit.cycles as f64;
    println!();
    println!("FR-FCFS baseline : {:>12} cycles", baseline.cycles);
    println!("MaxStallTime CBP : {:>12} cycles", crit.cycles);
    println!("speedup          : {:+.1}%", (speedup - 1.0) * 100.0);
    println!();
    println!(
        "ROB head blocked by long-latency loads {:.1}% of cycles (baseline)",
        baseline.blocked_cycle_fraction() * 100.0
    );
    if let (Some(c), Some(n)) = (
        crit.miss_latency_critical(),
        crit.miss_latency_noncritical(),
    ) {
        println!("L2 miss latency with criticality scheduling: critical {c:.0} vs non-critical {n:.0} CPU cycles");
    }
}
