//! Metric shootout: compare all five CBP annotation metrics (§3.1) and
//! the CLPT alternative on a pointer-chasing workload.
//!
//! `art` is the paper's most scheduling-sensitive app (double-indirect
//! pointer chasing over a huge footprint), which makes the differences
//! between ranking metrics visible even in a short run.
//!
//! ```text
//! cargo run --release --example metric_shootout
//! ```

use critmem::{AgentMix, PredictorKind, RunStats, Session, SystemConfig};
use critmem_predict::{CbpMetric, ClptMode};
use critmem_sched::SchedulerKind;

fn run(cfg: SystemConfig, workload: &AgentMix) -> RunStats {
    Session::new(cfg, workload)
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
}

fn main() {
    let instructions = 15_000;
    let workload = AgentMix::Parallel("art");
    let base_cfg = SystemConfig::paper_baseline(instructions);

    println!("app = art, {instructions} instructions/core, CASRAS-Crit scheduler\n");
    let baseline = run(base_cfg.clone(), &workload);
    println!(
        "{:<18} {:>12} cycles  (baseline)",
        "FR-FCFS", baseline.cycles
    );

    let mut candidates: Vec<(String, PredictorKind)> = CbpMetric::ALL
        .iter()
        .map(|&m| (format!("CBP {}", m.name()), PredictorKind::cbp64(m)))
        .collect();
    candidates.push((
        "CLPT-Binary".to_string(),
        PredictorKind::Clpt(ClptMode::Binary { threshold: 3 }),
    ));
    candidates.push((
        "CLPT-Consumers".to_string(),
        PredictorKind::Clpt(ClptMode::Consumers { threshold: 3 }),
    ));

    for (name, pred) in candidates {
        let cfg = base_cfg
            .clone()
            .with_scheduler(SchedulerKind::CasRasCrit)
            .with_predictor(pred);
        let stats = run(cfg, &workload);
        let speedup = baseline.cycles as f64 / stats.cycles as f64;
        let (one, many) = stats.critical_queue_fractions();
        println!(
            "{name:<18} {:>12} cycles  {:+6.1}%  (queue had >=1 critical {:4.1}% / >1 critical {:4.1}% of time)",
            stats.cycles,
            (speedup - 1.0) * 100.0,
            one * 100.0,
            many * 100.0,
        );
    }
}
